// Control dependence (paper Definition 4) and iterated control
// dependence CD⁺ (Definition 5).
//
// Computed from the postdominator tree with the standard edge-walk: for
// each CFG edge F --d--> S, every node on the postdominator-tree path
// from S up to (but excluding) ipostdom(F) is control dependent on F
// with out-direction d.
//
// Theorem 1 of the paper states that F ∈ CD⁺(N) iff N lies *between* F
// and ipostdom(F) (Definition 1); the test suite cross-checks this
// computation against a brute-force path-enumeration oracle.
#pragma once

#include <vector>

#include "cfg/dominance.hpp"
#include "cfg/graph.hpp"
#include "support/bitset.hpp"
#include "support/index_map.hpp"

namespace ctdf::cfg {

struct ControlDep {
  NodeId fork;
  bool direction;
};

class ControlDeps {
 public:
  /// `pdom` must be the postdominator tree of `g`.
  ControlDeps(const Graph& g, const DomTree& pdom);

  /// CD(n): the forks n is control dependent on, with the out-direction
  /// of the dependence.
  [[nodiscard]] const std::vector<ControlDep>& deps(NodeId n) const {
    return deps_[n];
  }

  /// Iterated control dependence CD⁺(n) as a node bitset.
  [[nodiscard]] support::Bitset iterated(NodeId n) const;

  /// CD⁺ of a node set (the union of per-node CD⁺).
  [[nodiscard]] support::Bitset iterated(const std::vector<NodeId>& ns) const;

 private:
  std::size_t num_nodes_;
  support::IndexMap<NodeId, std::vector<ControlDep>> deps_;
};

}  // namespace ctdf::cfg
