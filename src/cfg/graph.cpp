#include "cfg/graph.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"

namespace ctdf::cfg {

const char* to_string(NodeKind k) {
  switch (k) {
    case NodeKind::kStart: return "start";
    case NodeKind::kEnd: return "end";
    case NodeKind::kAssign: return "assign";
    case NodeKind::kFork: return "fork";
    case NodeKind::kJoin: return "join";
    case NodeKind::kLoopEntry: return "loop-entry";
    case NodeKind::kLoopExit: return "loop-exit";
  }
  CTDF_UNREACHABLE("bad NodeKind");
}

Graph::Graph() {
  start_ = add_node(NodeKind::kStart);
  nodes_[start_].name = "start";
  end_ = add_node(NodeKind::kEnd);
  nodes_[end_].name = "end";
}

NodeId Graph::add_node(NodeKind kind) {
  const NodeId id{nodes_.size()};
  nodes_.ensure(id);
  nodes_[id].kind = kind;
  loop_refs_.ensure(id);
  return id;
}

NodeId Graph::add_assign(lang::LValue lhs, lang::ExprPtr rhs) {
  const NodeId id = add_node(NodeKind::kAssign);
  nodes_[id].lhs = std::move(lhs);
  nodes_[id].rhs = std::move(rhs);
  return id;
}

NodeId Graph::add_fork(lang::ExprPtr pred) {
  const NodeId id = add_node(NodeKind::kFork);
  nodes_[id].pred = std::move(pred);
  return id;
}

NodeId Graph::add_join(std::string name) {
  const NodeId id = add_node(NodeKind::kJoin);
  nodes_[id].name = std::move(name);
  return id;
}

NodeId Graph::add_loop_entry(LoopId loop) {
  const NodeId id = add_node(NodeKind::kLoopEntry);
  nodes_[id].loop = loop;
  return id;
}

NodeId Graph::add_loop_exit(LoopId loop) {
  const NodeId id = add_node(NodeKind::kLoopExit);
  nodes_[id].loop = loop;
  return id;
}

void Graph::set_succ(NodeId from, bool dir, NodeId to) {
  Node& n = nodes_[from];
  NodeId& slot = dir ? n.succ_true : n.succ_false;
  CTDF_ASSERT_MSG(!slot.valid(), "successor slot already wired");
  CTDF_ASSERT_MSG(dir || n.kind == NodeKind::kStart || n.kind == NodeKind::kFork,
                  "false out-direction only on forks/start");
  slot = to;
  nodes_[to].preds.push_back(from);
}

void Graph::redirect_succ(NodeId from, bool dir, NodeId to) {
  Node& n = nodes_[from];
  NodeId& slot = dir ? n.succ_true : n.succ_false;
  CTDF_ASSERT_MSG(slot.valid(), "no existing edge to redirect");
  auto& old_preds = nodes_[slot].preds;
  const auto it = std::find(old_preds.begin(), old_preds.end(), from);
  CTDF_ASSERT(it != old_preds.end());
  old_preds.erase(it);
  slot = to;
  nodes_[to].preds.push_back(from);
}

std::vector<NodeId> Graph::succs(NodeId n) const {
  const Node& node = nodes_[n];
  std::vector<NodeId> out;
  if (node.succ_true.valid()) out.push_back(node.succ_true);
  if (node.succ_false.valid()) out.push_back(node.succ_false);
  return out;
}

bool Graph::has_succ(NodeId from, bool dir) const {
  const Node& n = nodes_[from];
  return (dir ? n.succ_true : n.succ_false).valid();
}

std::vector<NodeId> Graph::all_nodes() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) out.emplace_back(i);
  return out;
}

std::vector<lang::VarId> Graph::refs(NodeId n) const {
  const Node& node = nodes_[n];
  std::vector<lang::VarId> out;
  switch (node.kind) {
    case NodeKind::kAssign:
      out.push_back(node.lhs.var);
      if (node.lhs.index) node.lhs.index->collect_vars(out);
      node.rhs->collect_vars(out);
      break;
    case NodeKind::kFork:
      node.pred->collect_vars(out);
      break;
    case NodeKind::kLoopEntry:
    case NodeKind::kLoopExit:
      out = loop_refs_[n];
      break;
    case NodeKind::kStart:
    case NodeKind::kEnd:
    case NodeKind::kJoin:
      break;
  }
  return out;
}

void Graph::set_loop_refs(NodeId n, std::vector<lang::VarId> vars) {
  CTDF_ASSERT(nodes_[n].kind == NodeKind::kLoopEntry ||
              nodes_[n].kind == NodeKind::kLoopExit);
  loop_refs_[n] = std::move(vars);
}

namespace {

void dfs_postorder(const Graph& g, NodeId n, std::vector<bool>& seen,
                   std::vector<NodeId>& post, bool reverse) {
  // Iterative DFS; graphs can be deep (long straight-line programs).
  struct Frame {
    NodeId node;
    std::vector<NodeId> next;
    std::size_t i = 0;
  };
  std::vector<Frame> stack;
  const auto neighbors = [&](NodeId v) {
    return reverse ? g.preds(v) : g.succs(v);
  };
  seen[n.index()] = true;
  stack.push_back({n, neighbors(n)});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.i < f.next.size()) {
      const NodeId m = f.next[f.i++];
      if (!seen[m.index()]) {
        seen[m.index()] = true;
        stack.push_back({m, neighbors(m)});
      }
    } else {
      post.push_back(f.node);
      stack.pop_back();
    }
  }
}

}  // namespace

std::vector<NodeId> Graph::reverse_postorder() const {
  std::vector<bool> seen(size(), false);
  std::vector<NodeId> post;
  dfs_postorder(*this, start_, seen, post, /*reverse=*/false);
  std::reverse(post.begin(), post.end());
  return post;
}

std::vector<NodeId> Graph::reverse_postorder_of_reverse() const {
  std::vector<bool> seen(size(), false);
  std::vector<NodeId> post;
  dfs_postorder(*this, end_, seen, post, /*reverse=*/true);
  std::reverse(post.begin(), post.end());
  return post;
}

std::string Graph::to_dot(const lang::SymbolTable& syms) const {
  std::ostringstream os;
  os << "digraph cfg {\n  node [shape=box, fontname=\"monospace\"];\n";
  for (NodeId n : all_nodes()) {
    const Node& node = nodes_[n];
    std::string label;
    switch (node.kind) {
      case NodeKind::kStart: label = "start"; break;
      case NodeKind::kEnd: label = "end"; break;
      case NodeKind::kJoin:
        label = node.name.empty() ? "join" : "join " + node.name;
        break;
      case NodeKind::kAssign:
        label = node.lhs.to_string(syms) + " := " + node.rhs->to_string(syms);
        break;
      case NodeKind::kFork:
        label = "if " + node.pred->to_string(syms);
        break;
      case NodeKind::kLoopEntry:
        label = "loop-entry " + std::to_string(node.loop.value());
        break;
      case NodeKind::kLoopExit:
        label = "loop-exit " + std::to_string(node.loop.value());
        break;
    }
    os << "  n" << n.value() << " [label=\"" << n.value() << ": " << label
       << "\"];\n";
  }
  for (NodeId n : all_nodes()) {
    const Node& node = nodes_[n];
    if (node.succ_true.valid()) {
      os << "  n" << n.value() << " -> n" << node.succ_true.value();
      if (node.kind == NodeKind::kFork || node.kind == NodeKind::kStart)
        os << " [label=\"T\"]";
      os << ";\n";
    }
    if (node.succ_false.valid())
      os << "  n" << n.value() << " -> n" << node.succ_false.value()
         << " [label=\"F\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::vector<std::string> Graph::validate() const {
  std::vector<std::string> problems;
  const auto fail = [&](std::string msg) { problems.push_back(std::move(msg)); };

  for (NodeId n : all_nodes()) {
    const Node& node = nodes_[n];
    const bool needs_two = node.kind == NodeKind::kFork ||
                           node.kind == NodeKind::kStart;
    if (node.kind == NodeKind::kEnd) {
      if (node.succ_true.valid() || node.succ_false.valid())
        fail("end node has successors");
      continue;
    }
    if (!node.succ_true.valid())
      fail("node " + std::to_string(n.value()) + " missing true successor");
    if (needs_two && !node.succ_false.valid())
      fail("fork " + std::to_string(n.value()) + " missing false successor");
    if (!needs_two && node.succ_false.valid())
      fail("non-fork " + std::to_string(n.value()) + " has false successor");
  }

  // Pred list consistency.
  support::IndexMap<NodeId, std::size_t> in_count(size(), 0);
  for (NodeId n : all_nodes())
    for (NodeId s : succs(n)) in_count[s]++;
  for (NodeId n : all_nodes()) {
    if (preds(n).size() != in_count[n])
      fail("pred list of node " + std::to_string(n.value()) + " inconsistent");
  }

  // Reachability: every node on some start→end path.
  {
    std::vector<bool> fwd(size(), false), bwd(size(), false);
    std::vector<NodeId> post;
    dfs_postorder(*this, start_, fwd, post, false);
    post.clear();
    dfs_postorder(*this, end_, bwd, post, true);
    for (NodeId n : all_nodes()) {
      if (!fwd[n.index()])
        fail("node " + std::to_string(n.value()) + " unreachable from start");
      else if (!bwd[n.index()])
        fail("node " + std::to_string(n.value()) + " cannot reach end");
    }
  }
  return problems;
}

}  // namespace ctdf::cfg
