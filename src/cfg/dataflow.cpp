#include "cfg/dataflow.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ctdf::cfg {

namespace {

/// A write is strong iff the target is an unaliased scalar.
bool strong_def(const lang::SymbolTable& syms, const lang::LValue& lv) {
  return !lv.is_array_elem() && !syms.is_array(lv.var) &&
         syms.alias_class(lv.var).size() == 1;
}

}  // namespace

UseDef::UseDef(const Graph& g, const lang::SymbolTable& syms)
    : num_vars(syms.size()) {
  use.resize(g.size());
  def.resize(g.size());
  for (NodeId n : g.all_nodes()) {
    use[n] = support::Bitset(num_vars);
    def[n] = support::Bitset(num_vars);
    const Node& node = g.node(n);
    std::vector<lang::VarId> reads;
    switch (node.kind) {
      case NodeKind::kAssign:
        node.rhs->collect_vars(reads);
        if (node.lhs.index) node.lhs.index->collect_vars(reads);
        if (strong_def(syms, node.lhs)) def[n].set(node.lhs.var.index());
        break;
      case NodeKind::kFork:
        node.pred->collect_vars(reads);
        break;
      default:
        break;
    }
    for (lang::VarId v : reads) use[n].set(v.index());
  }
}

Liveness::Liveness(const Graph& g, const lang::SymbolTable& syms) {
  const UseDef ud(g, syms);
  in_.resize(g.size());
  out_.resize(g.size());
  for (NodeId n : g.all_nodes()) {
    in_[n] = support::Bitset(ud.num_vars);
    out_[n] = support::Bitset(ud.num_vars);
  }
  // Everything is observable at end.
  for (std::size_t v = 0; v < ud.num_vars; ++v)
    in_[g.end()].set(v);

  // Round-robin over reverse order until fixpoint (graphs are small;
  // postorder seeding keeps iteration counts low).
  const auto order = g.reverse_postorder();
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId n = *it;
      if (n == g.end()) continue;
      support::Bitset out(ud.num_vars);
      for (NodeId s : g.succs(n)) out.union_with(in_[s]);
      support::Bitset in = out;
      // in = use ∪ (out \ def)
      ud.def[n].for_each([&](std::size_t v) { in.reset(v); });
      in.union_with(ud.use[n]);
      if (!(out == out_[n])) {
        out_[n] = std::move(out);
        changed = true;
      }
      if (!(in == in_[n])) {
        in_[n] = std::move(in);
        changed = true;
      }
    }
  }
}

ReachingDefs::ReachingDefs(const Graph& g, const lang::SymbolTable& syms)
    : g_(g) {
  // Definition sites: one per CFG node (assignments), plus one
  // pseudo-site per variable for the initial zero value (generated at
  // start, killable per variable by strong definitions).
  const std::size_t num_vars = syms.size();
  const std::size_t sites = g.size() + num_vars;
  const auto initial_site = [&](lang::VarId v) {
    return g.size() + v.index();
  };
  def_var_.resize(g.size());
  support::IndexMap<NodeId, support::Bitset> gen(g.size());
  support::IndexMap<NodeId, char> strong(g.size(), 0);
  for (NodeId n : g.all_nodes()) {
    gen[n] = support::Bitset(sites);
    const Node& node = g.node(n);
    if (node.kind == NodeKind::kAssign) {
      def_var_[n] = node.lhs.var;
      gen[n].set(n.index());
      strong[n] = strong_def(syms, node.lhs);
    } else if (n == g.start()) {
      for (std::size_t v = 0; v < num_vars; ++v)
        gen[n].set(initial_site(lang::VarId{v}));
    }
  }

  in_.resize(g.size());
  support::IndexMap<NodeId, support::Bitset> out(g.size());
  for (NodeId n : g.all_nodes()) {
    in_[n] = support::Bitset(sites);
    out[n] = support::Bitset(sites);
  }

  const auto order = g.reverse_postorder();
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId n : order) {
      support::Bitset in(sites);
      for (NodeId p : g.preds(n)) in.union_with(out[p]);
      support::Bitset o = in;
      if (strong[n]) {
        // Kill every other definition site of the same variable,
        // including its initial-value pseudo-site.
        const lang::VarId v = def_var_[n];
        o.for_each([&](std::size_t site) {
          if (site >= g.size()) {
            if (site == initial_site(v)) o.reset(site);
          } else if (const NodeId s{site}; s != n && def_var_[s] == v) {
            o.reset(site);
          }
        });
      }
      o.union_with(gen[n]);
      if (!(in == in_[n])) {
        in_[n] = std::move(in);
        changed = true;
      }
      if (!(o == out[n])) {
        out[n] = std::move(o);
        changed = true;
      }
    }
  }
}

std::vector<NodeId> ReachingDefs::defs_reaching(NodeId n,
                                                lang::VarId v) const {
  std::vector<NodeId> out;
  in_[n].for_each([&](std::size_t site) {
    if (site >= g_.size()) {
      if (site == g_.size() + v.index()) out.push_back(g_.start());
    } else if (const NodeId s{site}; def_var_[s] == v) {
      out.push_back(s);
    }
  });
  return out;
}

std::size_t eliminate_dead_stores(Graph& g, const lang::SymbolTable& syms) {
  std::size_t removed = 0;
  // Iterate: removing one dead store can make an earlier one dead.
  for (;;) {
    const Liveness live(g, syms);
    bool changed = false;
    for (NodeId n : g.all_nodes()) {
      Node& node = g.node(n);
      if (node.kind != NodeKind::kAssign) continue;
      if (node.lhs.is_array_elem() || syms.is_array(node.lhs.var)) continue;
      if (syms.alias_class(node.lhs.var).size() != 1) continue;
      if (live.live_out(n).test(node.lhs.var.index())) continue;
      // Dead: the value can never be observed. Demote to a join (no-op
      // pass-through); expression evaluation has no side effects.
      node.kind = NodeKind::kJoin;
      node.name = "dse";
      node.rhs.reset();
      node.lhs = lang::LValue{};
      ++removed;
      changed = true;
    }
    if (!changed) break;
  }
  return removed;
}

}  // namespace ctdf::cfg
