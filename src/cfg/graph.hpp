// Statement-level control-flow graphs (paper Section 2.1).
//
// Nodes are statements of three kinds — assignments, forks
// (`if p then goto lt else goto lf`), and joins — plus the unique
// `start` and `end` nodes. Following the paper's convention, `start` is
// itself a fork: its true out-edge leads to the program entry and its
// false out-edge leads directly to `end`, so `start` participates in
// control dependence like any other fork.
//
// After `LoopTransform` (see intervals.hpp) two more node kinds appear:
// loop-entry and loop-exit pseudo-statements (paper Section 3).
//
// Fork out-edges are indexed by a boolean out-direction; all other
// nodes have a single out-edge whose direction is `true` by convention
// (paper Section 2.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "support/bitset.hpp"
#include "support/ids.hpp"
#include "support/index_map.hpp"

namespace ctdf::cfg {

struct NodeTag;
using NodeId = support::Id<NodeTag>;

struct LoopTag;
using LoopId = support::Id<LoopTag>;

enum class NodeKind : std::uint8_t {
  kStart,
  kEnd,
  kAssign,
  kFork,
  kJoin,
  kLoopEntry,  ///< inserted by LoopTransform
  kLoopExit,   ///< inserted by LoopTransform
};

[[nodiscard]] const char* to_string(NodeKind k);

struct Node {
  NodeKind kind = NodeKind::kJoin;

  // kAssign payload.
  lang::LValue lhs;
  lang::ExprPtr rhs;

  // kFork payload.
  lang::ExprPtr pred;

  // Out-edges. Non-forks use only succ_true ("true" is the conventional
  // single out-direction); kEnd has none.
  NodeId succ_true;
  NodeId succ_false;

  // In-edges, in insertion order.
  std::vector<NodeId> preds;

  // Loop-control payload (kLoopEntry / kLoopExit).
  LoopId loop;

  /// Debug label (source label names, "start", ...).
  std::string name;
};

class Graph {
 public:
  Graph();

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] NodeId start() const { return start_; }
  [[nodiscard]] NodeId end() const { return end_; }

  [[nodiscard]] const Node& node(NodeId n) const { return nodes_[n]; }
  [[nodiscard]] Node& node(NodeId n) { return nodes_[n]; }
  [[nodiscard]] NodeKind kind(NodeId n) const { return nodes_[n].kind; }

  NodeId add_assign(lang::LValue lhs, lang::ExprPtr rhs);
  NodeId add_fork(lang::ExprPtr pred);
  NodeId add_join(std::string name = {});
  NodeId add_loop_entry(LoopId loop);
  NodeId add_loop_exit(LoopId loop);

  /// Wires the `dir` out-edge of `from` to `to` and records the reverse
  /// edge. The slot must be unset.
  void set_succ(NodeId from, bool dir, NodeId to);

  /// Redirects the existing edge `from --dir--> old` to `to`, fixing
  /// pred lists.
  void redirect_succ(NodeId from, bool dir, NodeId to);

  /// Successors of n in fixed order: [succ_true] or [succ_true,
  /// succ_false] for forks; empty for end.
  [[nodiscard]] std::vector<NodeId> succs(NodeId n) const;

  /// True iff `from` has an out-edge in direction `dir`.
  [[nodiscard]] bool has_succ(NodeId from, bool dir) const;

  [[nodiscard]] const std::vector<NodeId>& preds(NodeId n) const {
    return nodes_[n].preds;
  }

  /// All node ids, ascending.
  [[nodiscard]] std::vector<NodeId> all_nodes() const;

  /// Variables referenced by node n: for assignments the lhs variable,
  /// index variables and rhs variables; for forks the predicate
  /// variables; empty for joins/start/end; set explicitly for loop
  /// control nodes (see set_loop_refs).
  [[nodiscard]] std::vector<lang::VarId> refs(NodeId n) const;

  /// Overrides refs() for a loop-control node (used to let access
  /// tokens bypass loops that do not touch their variable, Section 4).
  void set_loop_refs(NodeId n, std::vector<lang::VarId> vars);

  /// Reverse-postorder over forward edges from start (every reachable
  /// node exactly once).
  [[nodiscard]] std::vector<NodeId> reverse_postorder() const;

  /// Reverse-postorder of the reverse graph from end (for
  /// postdominators).
  [[nodiscard]] std::vector<NodeId> reverse_postorder_of_reverse() const;

  /// Graphviz rendering.
  [[nodiscard]] std::string to_dot(const lang::SymbolTable& syms) const;

  /// Structural sanity: start/end unique and wired, every non-end node
  /// has its out-edges set, pred lists consistent, every node reachable
  /// from start and reaching end. Returns problems found (empty = ok).
  [[nodiscard]] std::vector<std::string> validate() const;

 private:
  NodeId add_node(NodeKind kind);

  support::IndexMap<NodeId, Node> nodes_;
  support::IndexMap<NodeId, std::vector<lang::VarId>> loop_refs_;
  NodeId start_;
  NodeId end_;
};

}  // namespace ctdf::cfg
