// Dominator and postdominator trees (Cooper–Harvey–Kennedy iterative
// algorithm).
//
// Postdominators drive switch placement (paper Section 4.1, Theorem 1);
// forward dominators drive back-edge detection for the interval /
// loop-control transformation (Section 3).
#pragma once

#include <vector>

#include "cfg/graph.hpp"
#include "support/index_map.hpp"

namespace ctdf::cfg {

enum class DomDirection {
  kForward,   ///< dominators (root = start)
  kPostdom,   ///< postdominators (root = end, edges reversed)
};

class DomTree {
 public:
  DomTree(const Graph& g, DomDirection dir);

  [[nodiscard]] DomDirection direction() const { return dir_; }
  [[nodiscard]] NodeId root() const { return root_; }

  /// Immediate (post)dominator; invalid for the root.
  [[nodiscard]] NodeId idom(NodeId n) const { return idom_[n]; }

  /// Does `a` (post)dominate `b`? Reflexive.
  [[nodiscard]] bool dominates(NodeId a, NodeId b) const {
    return tin_[a] <= tin_[b] && tout_[b] <= tout_[a];
  }

  /// Strict (post)domination.
  [[nodiscard]] bool strictly_dominates(NodeId a, NodeId b) const {
    return a != b && dominates(a, b);
  }

  [[nodiscard]] const std::vector<NodeId>& children(NodeId n) const {
    return children_[n];
  }

  /// Tree nodes in a bottom-up order (every node before its parent).
  [[nodiscard]] const std::vector<NodeId>& bottom_up_order() const {
    return bottom_up_;
  }

 private:
  DomDirection dir_;
  NodeId root_;
  support::IndexMap<NodeId, NodeId> idom_;
  support::IndexMap<NodeId, std::vector<NodeId>> children_;
  support::IndexMap<NodeId, std::uint32_t> tin_, tout_;
  std::vector<NodeId> bottom_up_;
};

}  // namespace ctdf::cfg
