// Classic iterative dataflow analyses over the statement-level CFG.
//
// These are the standard substrate a parallelizing compiler built on
// this IR needs (the paper situates its translation among data
// dependences and SSA; Section 6.1's memory elimination is a cousin of
// live-range analysis). Used by the optional dead-store-elimination
// pass and available as a public analysis API.
//
// Alias discipline: a write to an *unaliased scalar* is a strong
// definition (kills); writes to aliased scalars and array elements are
// weak (kill nothing). The `end` node observes every variable — the
// final store is the program's result — so liveness at exit is "all
// variables".
#pragma once

#include "cfg/graph.hpp"
#include "lang/symbols.hpp"
#include "support/bitset.hpp"
#include "support/index_map.hpp"

namespace ctdf::cfg {

/// Per-node USE/DEF sets over variables, with the alias discipline
/// above. Shared by the analyses.
struct UseDef {
  UseDef(const Graph& g, const lang::SymbolTable& syms);

  support::IndexMap<NodeId, support::Bitset> use;
  /// Strong definitions only.
  support::IndexMap<NodeId, support::Bitset> def;
  std::size_t num_vars;
};

/// Backward may-analysis: which variables may still be read (or reach
/// `end`, which observes everything) before being strongly redefined.
class Liveness {
 public:
  Liveness(const Graph& g, const lang::SymbolTable& syms);

  [[nodiscard]] const support::Bitset& live_in(NodeId n) const {
    return in_[n];
  }
  [[nodiscard]] const support::Bitset& live_out(NodeId n) const {
    return out_[n];
  }

 private:
  support::IndexMap<NodeId, support::Bitset> in_, out_;
};

/// Forward may-analysis over definition sites: which assignment nodes
/// may reach each program point. Definition sites are assignment nodes;
/// the start node is a pseudo-definition of every variable (the initial
/// zero store).
class ReachingDefs {
 public:
  ReachingDefs(const Graph& g, const lang::SymbolTable& syms);

  /// Definition-site nodes whose values may reach the entry of n.
  [[nodiscard]] const support::Bitset& reach_in(NodeId n) const {
    return in_[n];
  }

  /// The definition sites of variable v that may reach node n's entry
  /// (i.e. n's UD-chain for v, plus start for the initial value).
  [[nodiscard]] std::vector<NodeId> defs_reaching(NodeId n,
                                                  lang::VarId v) const;

 private:
  const Graph& g_;
  support::IndexMap<NodeId, support::Bitset> in_;
  support::IndexMap<NodeId, lang::VarId> def_var_;  ///< invalid if not a def
};

/// Replaces assignments that are dead under `liveness` — unaliased
/// scalar targets not live out of the assignment — with no-op joins.
/// Expression evaluation is side-effect free (total semantics), so this
/// preserves the final store. Returns the number of stores eliminated.
std::size_t eliminate_dead_stores(Graph& g, const lang::SymbolTable& syms);

}  // namespace ctdf::cfg
