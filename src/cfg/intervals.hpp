// Interval decomposition and the loop-control transformation
// (paper Section 3).
//
// The paper decomposes the CFG hierarchically into nested single-entry
// intervals and inserts two pseudo-statements per cyclic interval:
//
//  * a *loop entry* node through which every edge into the header —
//    from outside the interval AND every back edge from within — is
//    rerouted, and
//  * a *loop exit* node on every edge A→B where A can reach the header
//    inside the interval but B cannot.
//
// For reducible graphs the nested cyclic intervals are exactly the
// natural loops (merged per header). Irreducible graphs are first made
// reducible by node splitting ("code copying", which the paper notes
// makes the decomposition universal): in every multiple-entry strongly
// connected region, all non-header entry nodes are duplicated until
// each cyclic region is single-entry.
//
// The transformation mutates the graph in place and returns a LoopInfo
// describing the final loop forest, entry/exit nodes, and back edges —
// everything the translator needs to wire per-iteration contexts.
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/graph.hpp"
#include "support/diagnostics.hpp"
#include "support/index_map.hpp"

namespace ctdf::cfg {

struct Loop {
  LoopId id;
  NodeId header;
  LoopId parent;               ///< invalid for top-level loops
  int depth = 0;               ///< 0 for top-level loops
  NodeId entry;                ///< the inserted loop-entry node
  std::vector<NodeId> exits;   ///< the inserted loop-exit nodes
  /// Nodes of the cyclic region (header, bodies, inner loop nodes, and
  /// the loop-entry node itself; exit nodes belong to the parent).
  std::vector<NodeId> members;
};

class LoopInfo {
 public:
  [[nodiscard]] const std::vector<Loop>& loops() const { return loops_; }
  [[nodiscard]] const Loop& loop(LoopId l) const { return loops_[l.index()]; }

  [[nodiscard]] bool in_loop(NodeId n, LoopId l) const;

  /// The loop whose entry/exit node this is (invalid otherwise).
  [[nodiscard]] LoopId loop_of_control_node(const Graph& g, NodeId n) const;

  /// True iff edge from→to is a loop back edge in the transformed graph
  /// (to is a loop-entry node and from is a member of its loop).
  [[nodiscard]] bool is_back_edge(NodeId from, NodeId to) const;

  /// Variables referenced by any assignment/fork member of loop l.
  [[nodiscard]] std::vector<lang::VarId> used_vars(const Graph& g,
                                                   LoopId l) const;

  /// Number of nodes duplicated to reach reducibility.
  [[nodiscard]] int nodes_split() const { return nodes_split_; }

 private:
  friend LoopInfo transform_loops(Graph& g,
                                  support::DiagnosticEngine& diags);

  std::vector<Loop> loops_;
  // membership_[n] = bitmask-free: list of loops containing n, innermost
  // first is not guaranteed; use in_loop for queries.
  support::IndexMap<NodeId, std::vector<LoopId>> membership_;
  int nodes_split_ = 0;
};

/// Applies the full Section 3 transformation to `g` in place:
/// node splitting to reducibility, then loop entry/exit insertion,
/// innermost loops first. Reports pathological graphs (split budget
/// exceeded) to `diags`.
[[nodiscard]] LoopInfo transform_loops(Graph& g,
                                       support::DiagnosticEngine& diags);

}  // namespace ctdf::cfg
