#include "cfg/dominance.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ctdf::cfg {

DomTree::DomTree(const Graph& g, DomDirection dir) : dir_(dir) {
  const bool forward = dir == DomDirection::kForward;
  root_ = forward ? g.start() : g.end();

  // Reverse postorder of the (possibly reversed) graph; CHK iterates to
  // a fixpoint over it.
  const std::vector<NodeId> rpo =
      forward ? g.reverse_postorder() : g.reverse_postorder_of_reverse();
  CTDF_ASSERT_MSG(rpo.size() == g.size(),
                  "graph must be connected (validate() first)");

  support::IndexMap<NodeId, std::uint32_t> rpo_index(g.size(), 0);
  for (std::size_t i = 0; i < rpo.size(); ++i)
    rpo_index[rpo[i]] = static_cast<std::uint32_t>(i);

  idom_.resize(g.size());
  idom_[root_] = root_;  // sentinel during iteration

  const auto preds_of = [&](NodeId n) {
    return forward ? g.preds(n) : g.succs(n);
  };

  const auto intersect = [&](NodeId a, NodeId b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = idom_[a];
      while (rpo_index[b] > rpo_index[a]) b = idom_[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId n : rpo) {
      if (n == root_) continue;
      NodeId new_idom = NodeId::invalid();
      for (NodeId p : preds_of(n)) {
        if (!idom_[p].valid()) continue;  // not yet processed
        new_idom = new_idom.valid() ? intersect(p, new_idom) : p;
      }
      // The DFS-tree parent precedes n in RPO, so some predecessor is
      // always processed.
      CTDF_ASSERT_MSG(new_idom.valid(), "node with no processed predecessor");
      if (idom_[n] != new_idom) {
        idom_[n] = new_idom;
        changed = true;
      }
    }
  }
  idom_[root_] = NodeId::invalid();  // the root has no idom

  // Children lists + Euler tour for O(1) ancestor queries.
  children_.resize(g.size());
  for (NodeId n : g.all_nodes())
    if (idom_[n].valid()) children_[idom_[n]].push_back(n);

  tin_.resize(g.size(), 0);
  tout_.resize(g.size(), 0);
  std::uint32_t clock = 0;
  struct Frame {
    NodeId node;
    std::size_t child = 0;
  };
  std::vector<Frame> stack{{root_}};
  tin_[root_] = clock++;
  while (!stack.empty()) {
    Frame& f = stack.back();
    const auto& kids = children_[f.node];
    if (f.child < kids.size()) {
      const NodeId c = kids[f.child++];
      tin_[c] = clock++;
      stack.push_back({c});
    } else {
      tout_[f.node] = clock++;
      bottom_up_.push_back(f.node);
      stack.pop_back();
    }
  }
  CTDF_ASSERT_MSG(bottom_up_.size() == g.size(),
                  "dominator tree must span the graph");
}

}  // namespace ctdf::cfg
