#include "core/progcache.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <utility>
#include <vector>

#include "core/compiler.hpp"
#include "lang/subroutines.hpp"
#include "support/hash.hpp"

namespace ctdf::core {

namespace fs = std::filesystem;

std::uint64_t program_cache_key(std::string_view source,
                                const PipelineOptions& options) {
  const translate::TranslateOptions& t = options.translate;
  support::Fnv1a64 h;
  // A format bump renames every address: a new binary never maps onto
  // old-format disk blobs (they would be rejected anyway; this avoids
  // even reading them).
  h.update_u64(machine::kBlobVersion);
  h.update_string(source);
  h.update_u64(t.sequential ? 1 : 0);
  h.update_u64(static_cast<std::uint64_t>(t.cover));
  h.update_u64(t.optimize_switches ? 1 : 0);
  h.update_u64(t.eliminate_memory ? 1 : 0);
  h.update_u64(t.parallel_reads ? 1 : 0);
  h.update_u64(t.dead_store_elimination ? 1 : 0);
  h.update_u64(t.post_optimize ? 1 : 0);
  h.update_u64(t.opt_passes.bits);
  h.update_u64(t.fuse_limit);
  h.update_u64(t.max_fanout);
  h.update_u64(t.parallel_store_arrays.size());
  for (const auto& a : t.parallel_store_arrays) h.update_string(a);
  h.update_u64(t.istructure_arrays.size());
  for (const auto& a : t.istructure_arrays) h.update_string(a);
  return h.digest();
}

const char* to_string(CacheDisposition d) {
  switch (d) {
    case CacheDisposition::kMiss:
      return "miss";
    case CacheDisposition::kHitMemory:
      return "hit-memory";
    case CacheDisposition::kHitDisk:
      return "hit-disk";
  }
  return "?";
}

ProgramCache::ProgramCache() : ProgramCache(Config()) {}

ProgramCache::ProgramCache(Config config) : config_(std::move(config)) {
  if (config_.capacity == 0) config_.capacity = 1;
}

std::string ProgramCache::blob_path(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof name, "%016llx",
                static_cast<unsigned long long>(key));
  return config_.dir + "/" + name + ".ctdfblob";
}

void ProgramCache::insert_locked(std::shared_ptr<const Entry> entry) {
  const std::uint64_t key = entry->key;
  lru_.push_front(key);
  stats_.blob_bytes += entry->blob_bytes;
  map_[key] = Slot{std::move(entry), lru_.begin()};
  while (map_.size() > config_.capacity) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    const auto it = map_.find(victim);
    stats_.blob_bytes -= it->second.entry->blob_bytes;
    map_.erase(it);
    ++stats_.evictions;
  }
  stats_.entries = map_.size();
}

void ProgramCache::write_disk_blob(std::uint64_t key,
                                   const std::vector<std::uint8_t>& blob) {
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  // A failed write only means the next process recompiles.
  (void)machine::write_blob_file(blob_path(key), blob);
  // Enforce the file cap with oldest-mtime eviction.
  std::vector<std::pair<fs::file_time_type, fs::path>> files;
  for (const auto& e : fs::directory_iterator(config_.dir, ec)) {
    if (e.path().extension() == ".ctdfblob")
      files.emplace_back(fs::last_write_time(e.path(), ec), e.path());
  }
  if (files.size() <= config_.disk_capacity) return;
  std::sort(files.begin(), files.end());
  for (std::size_t i = 0; i + config_.disk_capacity < files.size(); ++i)
    fs::remove(files[i].second, ec);
}

ProgramCache::Outcome ProgramCache::get(std::string_view source,
                                        const PipelineOptions& options) {
  const std::uint64_t key = program_cache_key(source, options);
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = map_.find(key); it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    it->second.lru_pos = lru_.begin();
    ++stats_.hits;
    return {it->second.entry, CacheDisposition::kHitMemory, {}};
  }
  if (!config_.dir.empty()) {
    machine::BlobReadResult read = machine::read_blob_file(blob_path(key));
    if (read.ok()) {
      auto entry = std::make_shared<Entry>();
      entry->key = key;
      entry->image = std::move(read.image);
      entry->blob_bytes = read.blob_bytes;
      entry->content_hash = read.content_hash;
      insert_locked(entry);
      ++stats_.disk_hits;
      return {std::move(entry), CacheDisposition::kHitDisk, {}};
    }
    // kUnreadable = not there yet (a plain miss); anything else is a
    // stale/corrupt/truncated blob — count it, recompile, rewrite.
    if (read.error != machine::BlobError::kUnreadable) ++stats_.disk_rejects;
  }
  PipelineOptions po = options;
  po.lower = true;  // an image without an ExecProgram is useless
  const auto expanded =
      lang::expand_subroutines_or_throw(std::string(source));
  CompileResult cr = Pipeline(po).run(expanded.source);
  PipelineTrace trace = std::move(cr.trace);
  auto entry = std::make_shared<Entry>();
  entry->key = key;
  entry->image = make_program_image(std::move(cr));
  const std::vector<std::uint8_t> blob = machine::serialize(entry->image);
  entry->blob_bytes = blob.size();
  entry->content_hash = machine::blob_content_hash(blob);
  ++stats_.misses;
  if (!config_.dir.empty()) write_disk_blob(key, blob);
  insert_locked(entry);
  return {std::move(entry), CacheDisposition::kMiss, std::move(trace)};
}

CacheStats ProgramCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string render_cache_json(const CacheStats& stats,
                              CacheDisposition disposition,
                              std::uint64_t key) {
  char key_hex[32];
  std::snprintf(key_hex, sizeof key_hex, "%016llx",
                static_cast<unsigned long long>(key));
  std::ostringstream os;
  os << "{\n    \"disposition\": \"" << to_string(disposition) << "\""
     << ",\n    \"key\": \"" << key_hex << "\""
     << ",\n    \"hits\": " << stats.hits
     << ",\n    \"disk_hits\": " << stats.disk_hits
     << ",\n    \"misses\": " << stats.misses
     << ",\n    \"evictions\": " << stats.evictions
     << ",\n    \"disk_rejects\": " << stats.disk_rejects
     << ",\n    \"entries\": " << stats.entries
     << ",\n    \"blob_bytes\": " << stats.blob_bytes << "\n  }";
  return os.str();
}

}  // namespace ctdf::core
