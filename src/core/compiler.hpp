// Public facade: source text → dataflow graph → simulated execution.
//
// This is the API a downstream user programs against; examples/ and
// bench/ use nothing else. Typical use:
//
//   auto prog   = ctdf::core::parse(source);
//   auto tx     = ctdf::core::compile(prog,
//                     ctdf::translate::TranslateOptions::schema2_optimized());
//   auto result = ctdf::core::execute(tx, {});   // default machine
//   std::int64_t x = ctdf::core::read_scalar(prog, result.store, "x");
#pragma once

#include <string_view>

#include "lang/ast.hpp"
#include "lang/interp.hpp"
#include "lang/parser.hpp"
#include "core/pipeline.hpp"
#include "machine/machine.hpp"
#include "translate/translator.hpp"

namespace ctdf::core {

/// Parses source text; throws support::CompileError on syntax/semantic
/// errors.
[[nodiscard]] lang::Program parse(std::string_view source);

/// Translates a program under the given schema options; throws
/// support::CompileError on structural errors.
[[nodiscard]] translate::Translation compile(const lang::Program& prog,
                                             const translate::TranslateOptions& options);

/// One-step convenience: parse + compile.
[[nodiscard]] translate::Translation compile(std::string_view source,
                                             const translate::TranslateOptions& options);

/// Runs a translation on the simulated dataflow machine (lowers the
/// graph internally on every call).
[[nodiscard]] machine::RunResult execute(const translate::Translation& tx,
                                         const machine::MachineOptions& options);

/// Runs a pipeline compilation, reusing the ExecProgram cached by the
/// `lower` stage; falls back to lowering on the fly when that stage was
/// disabled.
[[nodiscard]] machine::RunResult execute(const CompileResult& cr,
                                         const machine::MachineOptions& options);

/// Packs a compilation into the self-contained unit blobs serialize
/// and the program cache stores: the lowered ExecProgram, the memory
/// geometry, and the name→cell table. Consumes the CompileResult (the
/// graph is dropped — an image is execution-only).
[[nodiscard]] machine::ProgramImage make_program_image(CompileResult cr);

/// Runs a self-contained program image — one deserialized from a blob
/// (machine/blob.hpp) or served by the program cache
/// (core/progcache.hpp). No source program or graph involved.
[[nodiscard]] machine::RunResult execute(const machine::ProgramImage& image,
                                         const machine::MachineOptions& options);

/// Reads a scalar variable (by name) out of a final store using the
/// program's storage layout. Throws on unknown names.
[[nodiscard]] std::int64_t read_scalar(const lang::Program& prog,
                                       const lang::Store& store,
                                       std::string_view name);

/// Reads one array element (by name) out of a final store.
[[nodiscard]] std::int64_t read_element(const lang::Program& prog,
                                        const lang::Store& store,
                                        std::string_view name,
                                        std::int64_t index);

}  // namespace ctdf::core
