// The staged compilation pipeline, driver side.
//
// core::Pipeline runs the explicit stage sequence defined in
// translate/stages.hpp (parse → cfg-build → … → validate) and collects
// a PipelineTrace: per-stage wall time, artifact sizes, and
// stage-specific counters. It optionally captures one stage's rendered
// artifact (`--dump-after` in the ctdf CLI). core::compile is a thin
// wrapper over Pipeline::run; both produce byte-identical graphs for
// identical options because the stage orchestration itself lives in
// translate::run_stages and is shared by every path.
//
//   ctdf::core::Pipeline p(ctdf::core::PipelineOptions{
//       translate::TranslateOptions::schema2_optimized()});
//   auto r = p.run(source);
//   std::puts(r.trace.table().c_str());
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lang/ast.hpp"
#include "machine/blob.hpp"
#include "machine/exec.hpp"
#include "translate/stages.hpp"
#include "translate/translator.hpp"

namespace ctdf::core {

class ProgramCache;

// The stage vocabulary is defined once, in the translate layer; core
// re-exports it so downstream users need only this header.
using translate::PipelineTrace;
using translate::Stage;
using translate::StageRecord;

/// Unified configuration for a pipeline run: the translation options
/// plus the pipeline-level stage toggles and dump selection.
struct PipelineOptions {
  translate::TranslateOptions translate;

  /// Run the stats-only `ssa` stage (φ-placement counts in the trace).
  bool compute_ssa = false;

  /// Run the final `validate` stage (on by default, as core::compile
  /// always validated).
  bool validate = true;

  /// Run the `lower` stage: graph → machine::ExecProgram, cached in
  /// CompileResult::exec so execution needs no per-run lowering.
  bool lower = true;

  /// Capture the rendered artifact of this stage into
  /// CompileResult::dump (Graphviz for graph stages, text for
  /// analyses).
  std::optional<Stage> dump_after;

  PipelineOptions() = default;
  /// Implicit on purpose: every TranslateOptions is a valid pipeline
  /// configuration, so call sites can keep passing schema presets.
  PipelineOptions(translate::TranslateOptions t) : translate(std::move(t)) {}

  /// Enables/disables a stage by name ("dse", "ssa", "optimize", ...;
  /// the old names "post-opt" and "fanout-lower" are accepted as
  /// aliases). Returns false for unknown names and for stages that
  /// cannot be toggled (cfg-build, translate, ...).
  bool configure_stage(std::string_view name, bool enabled);
};

struct CompileResult {
  translate::Translation translation;
  /// The lowered program (empty when PipelineOptions::lower is off).
  /// machine::run's ExecProgram overload executes it directly.
  machine::ExecProgram exec;
  /// Name→cell table of the memory image, carried into blobs
  /// (machine/blob.hpp) so a deserialized program renders stores by
  /// variable name without the source's symbol table.
  std::vector<machine::NamedCell> names;
  PipelineTrace trace;
  /// The artifact requested via PipelineOptions::dump_after (empty when
  /// none was requested or the stage did not run).
  std::string dump;
};

/// Result of a batch run over several sources.
struct BatchResult {
  std::vector<CompileResult> programs;
  /// Per-stage aggregate over the batch (times/sizes/counters summed).
  PipelineTrace combined;
  /// Sources that reused a previous identical source's front-end work
  /// (within-batch text sharing or a ProgramCache hit).
  std::size_t cache_hits = 0;
  /// Of cache_hits, sources whose lowered ExecProgram came out of a
  /// ProgramCache (run_many's cache overload): no pipeline stage — not
  /// even lower — ran for these.
  std::size_t lowerings_reused = 0;
  /// Serialized size of the cache's resident entries after the batch
  /// (0 for the cache-less overload).
  std::uint64_t cache_blob_bytes = 0;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {});

  [[nodiscard]] const PipelineOptions& options() const { return options_; }

  /// Full run from source text (the `parse` stage is timed and
  /// dumpable). Throws support::CompileError on any error.
  [[nodiscard]] CompileResult run(std::string_view source) const;

  /// Run from an already-parsed program; `parse` is reported skipped.
  [[nodiscard]] CompileResult run(const lang::Program& prog) const;

  /// Compiles a batch, sharing front-end work: textually identical
  /// sources are parsed and compiled once and the result is copied
  /// (traces still list every program; shared compiles count toward
  /// BatchResult::cache_hits).
  [[nodiscard]] BatchResult run_many(
      const std::vector<std::string>& sources) const;

  /// Batch compilation through a content-addressed program cache
  /// (core/progcache.hpp): identical (source, options) pairs share the
  /// whole pipeline *including lowering*, across batches and — with a
  /// disk tier — across processes. Cache-served programs carry an
  /// executable image (exec, memory geometry, names) but no graph and
  /// an empty trace; BatchResult::lowerings_reused counts them.
  [[nodiscard]] BatchResult run_many(const std::vector<std::string>& sources,
                                     ProgramCache& cache) const;

 private:
  PipelineOptions options_;
};

}  // namespace ctdf::core
