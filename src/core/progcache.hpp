// Content-addressed program cache: compile once, serve many.
//
// The paper's economics (Section 7) price translation as the expensive
// one-time act and token execution as the cheap repeatable one. This
// cache is that argument turned into infrastructure: a (source, option
// ladder) pair is hashed into a 64-bit key; the first request compiles
// through core::Pipeline and stores the resulting machine::ProgramImage;
// every later identical request skips the entire 13-stage pipeline plus
// lowering and goes straight to execution. `ctdf serve`, `ctdf run
// --cache-dir=`, and Pipeline::run_many's cache overload all multiplex
// off this one class.
//
// Two tiers:
//  * an in-memory LRU of deserialization-free ProgramImages (capacity
//    in entries, least-recently-used eviction);
//  * an optional on-disk tier of serialized blobs (machine/blob.hpp)
//    under Config::dir, named <16-hex-key>.ctdfblob, capped at
//    Config::disk_capacity files with oldest-mtime eviction. Disk blobs
//    survive the process, so a warm cache directory turns even the
//    first request of a new process into a decode instead of a compile.
//
// Every disk read goes through the blob reader's typed rejection
// (stale version, truncation, corruption): a bad blob counts as a
// disk_reject, the program is recompiled, and the file is rewritten —
// cache corruption can cost time, never correctness.
//
// Key definition (see program_cache_key): Fnv1a64 over the source text
// and every graph-shaping TranslateOptions field — schema/cover,
// switch placement, memory elimination, read/store parallelization,
// DSE, the optimizer pass set and fuse limit, fan-out bound, and the
// per-array name lists — plus machine::kBlobVersion so a format bump
// invalidates every address at once. Pipeline-level toggles that only
// affect traces/dumps (compute_ssa, validate, dump_after) are
// deliberately excluded: they do not change the image.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/pipeline.hpp"
#include "machine/blob.hpp"

namespace ctdf::core {

/// The cache address of a (source, options) pair. Pure function of its
/// arguments; stable across processes (it names disk blobs).
[[nodiscard]] std::uint64_t program_cache_key(std::string_view source,
                                              const PipelineOptions& options);

/// Monotonic counters, all surfaced in --stats-json / --stage-stats /
/// serve responses.
struct CacheStats {
  std::uint64_t hits = 0;          ///< in-memory LRU hits
  std::uint64_t disk_hits = 0;     ///< misses served by a disk blob
  std::uint64_t misses = 0;        ///< full recompilations
  std::uint64_t evictions = 0;     ///< in-memory LRU entries dropped
  std::uint64_t disk_rejects = 0;  ///< disk blobs rejected (stale/corrupt)
  std::uint64_t entries = 0;       ///< current in-memory entry count
  std::uint64_t blob_bytes = 0;    ///< serialized size of resident entries
};

/// Where one request's program came from.
enum class CacheDisposition : std::uint8_t {
  kMiss,       ///< compiled by this request
  kHitMemory,  ///< served from the in-memory LRU
  kHitDisk,    ///< decoded from a disk blob
};

[[nodiscard]] const char* to_string(CacheDisposition d);

class ProgramCache {
 public:
  struct Config {
    /// In-memory LRU capacity, entries. Must be ≥ 1.
    std::size_t capacity = 64;
    /// On-disk blob directory; empty = no disk tier. Created on first
    /// write if missing.
    std::string dir;
    /// Disk tier capacity, files; oldest-mtime eviction past the cap.
    std::size_t disk_capacity = 256;
  };

  /// One cached compilation. Immutable once published; shared_ptr so a
  /// reader can keep executing an entry the LRU has since evicted.
  struct Entry {
    std::uint64_t key = 0;
    machine::ProgramImage image;
    /// Serialized blob size (header + payload) and payload hash — the
    /// entry's content address, reported in responses.
    std::uint64_t blob_bytes = 0;
    std::uint64_t content_hash = 0;
  };

  struct Outcome {
    std::shared_ptr<const Entry> entry;
    CacheDisposition disposition = CacheDisposition::kMiss;
    /// The compile's pipeline trace (stage timings); empty on hits —
    /// nothing ran.
    PipelineTrace trace;
  };

  ProgramCache();
  explicit ProgramCache(Config config);

  /// Compile-or-fetch. Subroutine constructs are expanded first, so the
  /// same surface syntax the CLI accepts is cacheable. Throws
  /// support::CompileError for programs that do not compile (compile
  /// errors are not cached). Thread-safe; concurrent callers serialize
  /// on one mutex — by design, the expensive repeatable act (execution)
  /// happens outside the cache.
  [[nodiscard]] Outcome get(std::string_view source,
                            const PipelineOptions& options);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct Slot {
    std::shared_ptr<const Entry> entry;
    std::list<std::uint64_t>::iterator lru_pos;
  };

  /// Inserts an entry, evicting the least-recently-used past capacity.
  /// Caller holds mu_.
  void insert_locked(std::shared_ptr<const Entry> entry);
  [[nodiscard]] std::string blob_path(std::uint64_t key) const;
  void write_disk_blob(std::uint64_t key,
                       const std::vector<std::uint8_t>& blob);

  Config config_;
  mutable std::mutex mu_;
  std::list<std::uint64_t> lru_;  ///< most-recent first
  std::unordered_map<std::uint64_t, Slot> map_;
  CacheStats stats_;
};

/// The cache object of `--stats-json` and serve responses: stats plus
/// this request's disposition and key, rendered with the same "  " base
/// indentation contract as machine::render_stats_json. Key-set frozen
/// by tests/machine_stats_json_schema_test.cpp.
[[nodiscard]] std::string render_cache_json(const CacheStats& stats,
                                            CacheDisposition disposition,
                                            std::uint64_t key);

}  // namespace ctdf::core
