#include "core/compiler.hpp"

#include "core/pipeline.hpp"

namespace ctdf::core {

lang::Program parse(std::string_view source) {
  return lang::parse_or_throw(source);
}

translate::Translation compile(const lang::Program& prog,
                               const translate::TranslateOptions& options) {
  return Pipeline(PipelineOptions(options)).run(prog).translation;
}

translate::Translation compile(std::string_view source,
                               const translate::TranslateOptions& options) {
  return Pipeline(PipelineOptions(options)).run(source).translation;
}

namespace {

std::vector<machine::IStructureRegion> istructure_regions(
    const translate::Translation& tx) {
  std::vector<machine::IStructureRegion> regions;
  regions.reserve(tx.istructures.size());
  for (const auto& r : tx.istructures)
    regions.push_back({r.base, r.extent});
  return regions;
}

std::vector<machine::SharedRegion> shared_regions(
    const translate::Translation& tx) {
  std::vector<machine::SharedRegion> regions;
  regions.reserve(tx.shared_cells.size());
  for (const auto& r : tx.shared_cells)
    regions.push_back({r.base, r.extent});
  return regions;
}

}  // namespace

machine::RunResult execute(const translate::Translation& tx,
                           const machine::MachineOptions& options) {
  return machine::run(tx.graph, tx.memory_cells, options,
                      istructure_regions(tx), shared_regions(tx));
}

machine::RunResult execute(const CompileResult& cr,
                           const machine::MachineOptions& options) {
  const translate::Translation& tx = cr.translation;
  if (cr.exec.num_ops() == 0)  // `lower` stage disabled
    return execute(tx, options);
  return machine::run(cr.exec, tx.memory_cells, options,
                      istructure_regions(tx), shared_regions(tx));
}

machine::ProgramImage make_program_image(CompileResult cr) {
  machine::ProgramImage image;
  image.exec = std::move(cr.exec);
  image.memory_cells = cr.translation.memory_cells;
  image.istructures = istructure_regions(cr.translation);
  image.shared = shared_regions(cr.translation);
  image.names = std::move(cr.names);
  return image;
}

machine::RunResult execute(const machine::ProgramImage& image,
                           const machine::MachineOptions& options) {
  return machine::run(image.exec,
                      static_cast<std::size_t>(image.memory_cells), options,
                      image.istructures, image.shared);
}

std::int64_t read_scalar(const lang::Program& prog, const lang::Store& store,
                         std::string_view name) {
  const auto v = prog.symbols.lookup(name);
  if (!v) throw support::CompileError("unknown variable: " + std::string(name));
  return lang::load_var(prog, store, *v);
}

std::int64_t read_element(const lang::Program& prog, const lang::Store& store,
                          std::string_view name, std::int64_t index) {
  const auto v = prog.symbols.lookup(name);
  if (!v) throw support::CompileError("unknown array: " + std::string(name));
  return lang::load_var(prog, store, *v, index);
}

}  // namespace ctdf::core
