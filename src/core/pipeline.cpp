#include "core/pipeline.hpp"

#include <chrono>
#include <unordered_map>
#include <utility>

#include "core/progcache.hpp"
#include "lang/parser.hpp"
#include "lang/symbols.hpp"
#include "machine/exec.hpp"
#include "support/diagnostics.hpp"

namespace ctdf::core {

namespace {

using Clock = std::chrono::steady_clock;

/// Collects records into a trace and captures the one requested dump.
class TraceHooks final : public translate::StageHooks {
 public:
  TraceHooks(PipelineTrace& trace, std::optional<Stage> dump_after,
             std::string& dump)
      : trace_(trace), dump_after_(dump_after), dump_(dump) {}

  void record(StageRecord r) override { trace_.stages.push_back(std::move(r)); }
  bool wants_dump(Stage s) override { return dump_after_ == s; }
  void dump(Stage /*s*/, std::string artifact) override {
    dump_ = std::move(artifact);
  }

 private:
  PipelineTrace& trace_;
  std::optional<Stage> dump_after_;
  std::string& dump_;
};

/// Lowers the translated graph into CompileResult::exec and appends the
/// `lower` stage record. Emitted here, not in translate::run_stages:
/// the translate library cannot depend on the machine library.
void run_lower_stage(const PipelineOptions& options, CompileResult& result,
                     TraceHooks& hooks) {
  StageRecord r;
  r.stage = Stage::kLower;
  if (!options.lower) {
    hooks.record(std::move(r));
    return;
  }
  const auto t0 = Clock::now();
  result.exec = machine::lower(result.translation.graph);
  r.ran = true;
  r.nanos =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count();
  r.size_in = result.translation.graph.num_nodes();
  r.size_out = result.exec.num_ops();
  r.counters = {
      {"ops", static_cast<std::int64_t>(result.exec.num_ops())},
      {"dests", static_cast<std::int64_t>(result.exec.num_dests())},
      {"frame-slots", static_cast<std::int64_t>(result.exec.frame_slots())},
      {"literals", static_cast<std::int64_t>(result.exec.num_literals())}};
  hooks.record(std::move(r));
  if (hooks.wants_dump(Stage::kLower))
    hooks.dump(Stage::kLower, machine::render(result.exec));
}

/// The name→cell table travelling with the compile (and into blobs):
/// one row per variable, with the same base/extent the interpreter's
/// StorageLayout assigns, so store rendering by name needs no symbols.
std::vector<machine::NamedCell> named_cells(const lang::Program& prog) {
  const lang::StorageLayout layout{prog.symbols};
  std::vector<machine::NamedCell> names;
  for (const lang::VarId v : prog.symbols.all_vars()) {
    machine::NamedCell cell;
    cell.name = prog.symbols.name(v);
    cell.base = static_cast<std::uint32_t>(layout.base(v));
    cell.extent = prog.symbols.is_array(v)
                      ? static_cast<std::int64_t>(layout.extent(v))
                      : 0;
    names.push_back(std::move(cell));
  }
  return names;
}

}  // namespace

bool PipelineOptions::configure_stage(std::string_view name, bool enabled) {
  if (name == "dse") {
    translate.dead_store_elimination = enabled;
  } else if (name == "ssa") {
    compute_ssa = enabled;
  } else if (name == "optimize" || name == "post-opt") {
    translate.post_optimize = enabled;
  } else if (name == "validate") {
    validate = enabled;
  } else if (name == "lower") {
    lower = enabled;
  } else if ((name == "fanout" || name == "fanout-lower") && !enabled) {
    translate.max_fanout = 0;
  } else {
    return false;
  }
  return true;
}

Pipeline::Pipeline(PipelineOptions options) : options_(std::move(options)) {}

CompileResult Pipeline::run(std::string_view source) const {
  CompileResult result;
  TraceHooks hooks(result.trace, options_.dump_after, result.dump);

  support::DiagnosticEngine diags;
  const auto t0 = Clock::now();
  const lang::Program prog = lang::parse(source, diags);
  StageRecord pr;
  pr.stage = Stage::kParse;
  pr.ran = true;
  pr.nanos =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count();
  pr.size_in = source.size();
  pr.size_out = prog.body.size();
  pr.counters = {
      {"stmts", static_cast<std::int64_t>(prog.body.size())},
      {"vars", static_cast<std::int64_t>(prog.symbols.size())}};
  hooks.record(std::move(pr));
  diags.throw_if_errors();
  if (hooks.wants_dump(Stage::kParse))
    hooks.dump(Stage::kParse, prog.to_string());

  translate::StageSet set;
  set.ssa = options_.compute_ssa;
  set.validate = options_.validate;
  result.translation =
      translate::run_stages(prog, options_.translate, diags, &hooks, set);
  diags.throw_if_errors();
  result.names = named_cells(prog);
  run_lower_stage(options_, result, hooks);
  return result;
}

CompileResult Pipeline::run(const lang::Program& prog) const {
  CompileResult result;
  TraceHooks hooks(result.trace, options_.dump_after, result.dump);

  StageRecord pr;  // no parsing happened on this path
  pr.stage = Stage::kParse;
  pr.ran = false;
  hooks.record(std::move(pr));

  support::DiagnosticEngine diags;
  translate::StageSet set;
  set.ssa = options_.compute_ssa;
  set.validate = options_.validate;
  result.translation =
      translate::run_stages(prog, options_.translate, diags, &hooks, set);
  diags.throw_if_errors();
  result.names = named_cells(prog);
  run_lower_stage(options_, result, hooks);
  return result;
}

BatchResult Pipeline::run_many(const std::vector<std::string>& sources) const {
  BatchResult batch;
  batch.programs.reserve(sources.size());
  // Front-end sharing: textually identical sources compile once.
  std::unordered_map<std::string, std::size_t> seen;
  for (const std::string& src : sources) {
    if (const auto it = seen.find(src); it != seen.end()) {
      batch.programs.push_back(batch.programs[it->second]);
      ++batch.cache_hits;
    } else {
      seen.emplace(src, batch.programs.size());
      batch.programs.push_back(run(src));
    }
    batch.combined.merge(batch.programs.back().trace);
  }
  return batch;
}

BatchResult Pipeline::run_many(const std::vector<std::string>& sources,
                               ProgramCache& cache) const {
  BatchResult batch;
  batch.programs.reserve(sources.size());
  for (const std::string& src : sources) {
    ProgramCache::Outcome out = cache.get(src, options_);
    const machine::ProgramImage& image = out.entry->image;
    CompileResult cr;
    cr.exec = image.exec;
    cr.names = image.names;
    // Rehydrate the memory geometry execute() reads off the
    // translation; the graph itself is not reconstructed for hits.
    cr.translation.memory_cells = image.memory_cells;
    for (const auto& r : image.istructures)
      cr.translation.istructures.push_back({r.base, r.extent});
    for (const auto& r : image.shared)
      cr.translation.shared_cells.push_back({r.base, r.extent});
    cr.trace = std::move(out.trace);
    if (out.disposition != CacheDisposition::kMiss) {
      ++batch.cache_hits;
      ++batch.lowerings_reused;
    }
    batch.combined.merge(cr.trace);
    batch.programs.push_back(std::move(cr));
  }
  batch.cache_blob_bytes = cache.stats().blob_bytes;
  return batch;
}

}  // namespace ctdf::core
