#include "dfg/graph.hpp"

#include <sstream>

#include "support/assert.hpp"

namespace ctdf::dfg {

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kStart: return "start";
    case OpKind::kEnd: return "end";
    case OpKind::kBinOp: return "binop";
    case OpKind::kUnOp: return "unop";
    case OpKind::kLoad: return "load";
    case OpKind::kLoadIdx: return "load[]";
    case OpKind::kStore: return "store";
    case OpKind::kStoreIdx: return "store[]";
    case OpKind::kSwitch: return "switch";
    case OpKind::kMerge: return "merge";
    case OpKind::kSynch: return "synch";
    case OpKind::kLoopEntry: return "loop-entry";
    case OpKind::kLoopExit: return "loop-exit";
    case OpKind::kIStore: return "istore";
    case OpKind::kIFetch: return "ifetch";
    case OpKind::kGate: return "gate";
    case OpKind::kMacro: return "macro";
  }
  CTDF_UNREACHABLE("bad OpKind");
}

std::int64_t apply_step(const FusedStep& s, std::int64_t v) {
  switch (s.kind) {
    case OpKind::kBinOp:
      return s.value_port == 0 ? lang::eval_binop(s.bop, v, s.literal)
                               : lang::eval_binop(s.bop, s.literal, v);
    case OpKind::kUnOp:
      return lang::eval_unop(s.uop, v);
    case OpKind::kGate:
      return s.value_port == 0 ? v : s.literal;
    case OpKind::kSynch:
      return 0;
    default:
      CTDF_UNREACHABLE("bad FusedStep kind");
  }
}

NodeId Graph::add(Node node) {
  const NodeId id{nodes_.size()};
  node.operands.resize(node.num_inputs);
  nodes_.ensure(id);
  nodes_[id] = std::move(node);
  return id;
}

namespace {
Node make(OpKind kind, std::uint16_t in, std::uint16_t out,
          std::string label) {
  Node n;
  n.kind = kind;
  n.num_inputs = in;
  n.num_outputs = out;
  n.label = std::move(label);
  return n;
}
}  // namespace

NodeId Graph::add_binop(lang::BinOp op, std::string label) {
  Node n = make(OpKind::kBinOp, 2, 1, std::move(label));
  n.bop = op;
  return add(std::move(n));
}

NodeId Graph::add_unop(lang::UnOp op, std::string label) {
  Node n = make(OpKind::kUnOp, 1, 1, std::move(label));
  n.uop = op;
  return add(std::move(n));
}

NodeId Graph::add_load(std::uint32_t base, std::string label) {
  Node n = make(OpKind::kLoad, 1, 2, std::move(label));
  n.mem_base = base;
  return add(std::move(n));
}

NodeId Graph::add_load_idx(std::uint32_t base, std::int64_t extent,
                           std::string label) {
  Node n = make(OpKind::kLoadIdx, 2, 2, std::move(label));
  n.mem_base = base;
  n.mem_extent = extent;
  return add(std::move(n));
}

NodeId Graph::add_store(std::uint32_t base, std::string label) {
  Node n = make(OpKind::kStore, 2, 1, std::move(label));
  n.mem_base = base;
  return add(std::move(n));
}

NodeId Graph::add_store_idx(std::uint32_t base, std::int64_t extent,
                            std::string label) {
  Node n = make(OpKind::kStoreIdx, 3, 1, std::move(label));
  n.mem_base = base;
  n.mem_extent = extent;
  return add(std::move(n));
}

NodeId Graph::add_switch(std::string label) {
  return add(make(OpKind::kSwitch, 2, 2, std::move(label)));
}

NodeId Graph::add_merge(std::string label) {
  return add(make(OpKind::kMerge, 1, 1, std::move(label)));
}

NodeId Graph::add_synch(std::uint16_t arity, std::string label) {
  return add(make(OpKind::kSynch, arity, 1, std::move(label)));
}

NodeId Graph::add_loop_entry(cfg::LoopId loop, std::uint16_t ports,
                             std::string label) {
  Node n = make(OpKind::kLoopEntry, ports, ports, std::move(label));
  n.loop = loop;
  return add(std::move(n));
}

NodeId Graph::add_loop_exit(cfg::LoopId loop, std::uint16_t ports,
                            std::string label) {
  Node n = make(OpKind::kLoopExit, ports, ports, std::move(label));
  n.loop = loop;
  return add(std::move(n));
}

NodeId Graph::add_istore(std::uint32_t base, std::int64_t extent,
                         std::string label) {
  Node n = make(OpKind::kIStore, 3, 1, std::move(label));
  n.mem_base = base;
  n.mem_extent = extent;
  return add(std::move(n));
}

NodeId Graph::add_ifetch(std::uint32_t base, std::int64_t extent,
                         std::string label) {
  Node n = make(OpKind::kIFetch, 2, 1, std::move(label));
  n.mem_base = base;
  n.mem_extent = extent;
  return add(std::move(n));
}

NodeId Graph::add_gate(std::string label) {
  return add(make(OpKind::kGate, 2, 1, std::move(label)));
}

void Graph::connect(PortRef src, PortRef dst, bool dummy) {
  CTDF_ASSERT(src.port < nodes_[src.node].num_outputs);
  CTDF_ASSERT(dst.port < nodes_[dst.node].num_inputs);
  CTDF_ASSERT_MSG(!nodes_[dst.node].operands[dst.port].is_literal,
                  "cannot wire an arc into a literal-bound port");
  arcs_.push_back(Arc{src.node, src.port, dst.node, dst.port, dummy});
}

void Graph::bind_literal(PortRef dst, std::int64_t value) {
  CTDF_ASSERT(dst.port < nodes_[dst.node].num_inputs);
  Operand& op = nodes_[dst.node].operands[dst.port];
  op.is_literal = true;
  op.literal = value;
}

std::vector<Arc> Graph::out_arcs(NodeId n) const {
  std::vector<Arc> out;
  for (const Arc& a : arcs_)
    if (a.src == n) out.push_back(a);
  return out;
}

std::size_t Graph::fan_in(PortRef p) const {
  std::size_t c = 0;
  for (const Arc& a : arcs_)
    if (a.dst == p.node && a.dst_port == p.port) ++c;
  return c;
}

std::vector<NodeId> Graph::all_nodes() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) out.emplace_back(i);
  return out;
}

std::vector<std::string> Graph::validate() const {
  std::vector<std::string> problems;
  const auto fail = [&](std::string m) { problems.push_back(std::move(m)); };

  if (!start_.valid() || nodes_[start_].kind != OpKind::kStart)
    fail("missing/invalid start node");
  if (!end_.valid() || nodes_[end_].kind != OpKind::kEnd)
    fail("missing/invalid end node");

  // Per-node wired-port bitmaps (ports are bounded by num_inputs, which
  // can be large for loop entry/exit nodes in many-variable programs).
  std::vector<std::vector<bool>> wired(nodes_.size());
  for (NodeId n : all_nodes())
    wired[n.index()].assign(nodes_[n].num_inputs, false);

  for (const Arc& a : arcs_) {
    const Node& s = nodes_[a.src];
    const Node& d = nodes_[a.dst];
    if (a.src_port >= s.num_outputs)
      fail("arc out of " + std::to_string(a.src.value()) + " bad src port");
    if (a.dst_port >= d.num_inputs) {
      fail("arc into " + std::to_string(a.dst.value()) + " bad dst port");
    } else {
      if (d.operands[a.dst_port].is_literal)
        fail("arc into literal port of node " + std::to_string(a.dst.value()));
      wired[a.dst.index()][a.dst_port] = true;
    }
  }

  for (NodeId n : all_nodes()) {
    const Node& node = nodes_[n];
    if (node.kind == OpKind::kStart &&
        node.start_values.size() != node.num_outputs)
      fail("start node initial-value count mismatch");
    for (std::uint16_t p = 0; p < node.num_inputs; ++p) {
      if (node.operands[p].is_literal) continue;
      if (!wired[n.index()][p])
        fail("node " + std::to_string(n.value()) + " (" +
             to_string(node.kind) + " '" + node.label + "') input port " +
             std::to_string(p) + " unwired");
    }
  }
  return problems;
}

std::string Graph::to_dot() const {
  std::ostringstream os;
  os << "digraph dfg {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n";
  for (NodeId n : all_nodes()) {
    const Node& node = nodes_[n];
    std::string shape = "box";
    switch (node.kind) {
      case OpKind::kSwitch: shape = "invtrapezium"; break;
      case OpKind::kMerge: shape = "trapezium"; break;
      case OpKind::kSynch: shape = "triangle"; break;
      case OpKind::kLoopEntry:
      case OpKind::kLoopExit: shape = "box3d"; break;
      case OpKind::kStart:
      case OpKind::kEnd: shape = "ellipse"; break;
      default: break;
    }
    std::string label = to_string(node.kind);
    if (node.kind == OpKind::kBinOp)
      label = lang::to_string(node.bop);
    else if (node.kind == OpKind::kUnOp)
      label = lang::to_string(node.uop);
    else if (node.kind == OpKind::kMacro)
      label = "macro x" + std::to_string(node.steps.size() + 1);
    if (!node.label.empty()) label += "\\n" + node.label;
    os << "  n" << n.value() << " [shape=" << shape << ", label=\"" << label
       << "\"];\n";
  }
  for (const Arc& a : arcs_) {
    os << "  n" << a.src.value() << " -> n" << a.dst.value() << " [";
    if (a.dummy) os << "style=dotted, ";
    os << "taillabel=\"" << a.src_port << "\", headlabel=\"" << a.dst_port
       << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

GraphStats compute_stats(const Graph& g) {
  GraphStats s;
  s.nodes = g.num_nodes();
  s.arcs = g.num_arcs();
  for (const Arc& a : g.arcs())
    if (a.dummy) ++s.dummy_arcs;
  for (NodeId n : g.all_nodes()) {
    switch (g.node(n).kind) {
      case OpKind::kSwitch: ++s.switches; break;
      case OpKind::kMerge: ++s.merges; break;
      case OpKind::kSynch: ++s.synchs; break;
      case OpKind::kLoad:
      case OpKind::kLoadIdx:
      case OpKind::kIFetch: ++s.loads; break;
      case OpKind::kStore:
      case OpKind::kStoreIdx:
      case OpKind::kIStore: ++s.stores; break;
      case OpKind::kBinOp:
      case OpKind::kUnOp:
      case OpKind::kGate:
      case OpKind::kMacro: ++s.alu_ops; break;
      case OpKind::kLoopEntry:
      case OpKind::kLoopExit: ++s.loop_nodes; break;
      default: break;
    }
  }
  return s;
}

}  // namespace ctdf::dfg
