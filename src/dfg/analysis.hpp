// Loop-nest and dominance analysis over the dataflow graph, in service
// of the depth-weighted optimization passes (dfg/pass_manager.hpp).
//
// The DFG is a directed graph rooted at the Start node; loop-control
// back arcs (body → loop-head merges, loop-entry recirculation) make it
// cyclic exactly where the source program loops. The analysis computes
// the classic CFG toolkit over it:
//
//  * DFS pre/postorder from Start (arc direction = token flow);
//  * immediate dominators (iterative Cooper–Harvey–Kennedy over reverse
//    postorder);
//  * back arcs (u → v where v dominates u), their natural loops, and
//    per-node loop_depth = number of distinct natural loops containing
//    the node. Inner-loop nodes carry the highest depth, which is what
//    the fusion pass prioritizes: every arc removed there is a token
//    match saved once per iteration, not once per run.
//
// Nodes unreachable from Start (possible mid-pass-pipeline) get depth 0
// and no dominator; passes must treat them conservatively.
#pragma once

#include <cstdint>
#include <vector>

#include "dfg/graph.hpp"

namespace ctdf::dfg {

struct Analysis {
  /// DFS orders over reachable nodes.
  std::vector<NodeId> preorder;
  std::vector<NodeId> postorder;
  /// Node index → position in the respective order; kUnreachable when
  /// the node is not reachable from Start.
  std::vector<std::uint32_t> preorder_index;
  std::vector<std::uint32_t> postorder_index;

  /// Node index → immediate dominator; invalid for Start and for
  /// unreachable nodes.
  std::vector<NodeId> idom;

  /// Node index → innermost natural-loop header containing the node
  /// (invalid when the node is in no loop). A header is its own
  /// innermost header.
  std::vector<NodeId> loop_header;
  /// Node index → number of distinct natural loops containing the node.
  std::vector<std::uint32_t> loop_depth;

  static constexpr std::uint32_t kUnreachable = UINT32_MAX;

  [[nodiscard]] bool reachable(NodeId n) const {
    return preorder_index[n.index()] != kUnreachable;
  }

  /// True when a dominates b (reflexive); false if either is
  /// unreachable.
  [[nodiscard]] bool dominates(NodeId a, NodeId b) const;

  [[nodiscard]] std::uint32_t max_loop_depth() const {
    std::uint32_t best = 0;
    for (const std::uint32_t d : loop_depth) best = best > d ? best : d;
    return best;
  }
};

/// Runs the full analysis; O((nodes + arcs) · loop-nest depth).
[[nodiscard]] Analysis analyze(const Graph& g);

}  // namespace ctdf::dfg
