#include "dfg/analysis.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ctdf::dfg {

bool Analysis::dominates(NodeId a, NodeId b) const {
  if (!reachable(a) || !reachable(b)) return false;
  // Walk b's dominator chain toward the root; a's preorder position
  // bounds the walk (a dominator always precedes its dominee).
  while (b.valid()) {
    if (a == b) return true;
    if (preorder_index[b.index()] <= preorder_index[a.index()]) return false;
    b = idom[b.index()];
  }
  return false;
}

namespace {

/// Per-node successor/predecessor adjacency (deduplicated parallel
/// arcs are harmless for dominance, so arcs are kept as-is).
struct Adjacency {
  std::vector<std::vector<std::uint32_t>> succs;
  std::vector<std::vector<std::uint32_t>> preds;

  explicit Adjacency(const Graph& g)
      : succs(g.num_nodes()), preds(g.num_nodes()) {
    for (const Arc& a : g.arcs()) {
      succs[a.src.index()].push_back(a.dst.index());
      preds[a.dst.index()].push_back(a.src.index());
    }
  }
};

/// Iterative DFS from Start recording preorder and postorder.
void depth_first_orders(const Graph& g, const Adjacency& adj, Analysis& an) {
  const std::size_t n = g.num_nodes();
  an.preorder_index.assign(n, Analysis::kUnreachable);
  an.postorder_index.assign(n, Analysis::kUnreachable);
  an.preorder.clear();
  an.postorder.clear();
  if (n == 0) return;

  struct Frame {
    std::uint32_t node;
    std::size_t next_succ;
  };
  std::vector<Frame> stack;
  const std::uint32_t root = static_cast<std::uint32_t>(g.start().index());
  an.preorder_index[root] = static_cast<std::uint32_t>(an.preorder.size());
  an.preorder.push_back(NodeId{root});
  stack.push_back({root, 0});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_succ < adj.succs[f.node].size()) {
      const std::uint32_t s = adj.succs[f.node][f.next_succ++];
      if (an.preorder_index[s] != Analysis::kUnreachable) continue;
      an.preorder_index[s] = static_cast<std::uint32_t>(an.preorder.size());
      an.preorder.push_back(NodeId{s});
      stack.push_back({s, 0});
      continue;
    }
    an.postorder_index[f.node] =
        static_cast<std::uint32_t>(an.postorder.size());
    an.postorder.push_back(NodeId{f.node});
    stack.pop_back();
  }
}

/// Cooper–Harvey–Kennedy iterative dominators over reverse postorder.
void compute_dominators(const Graph& g, const Adjacency& adj, Analysis& an) {
  const std::size_t n = g.num_nodes();
  an.idom.assign(n, NodeId{});
  if (an.postorder.empty()) return;
  const std::uint32_t root = static_cast<std::uint32_t>(g.start().index());

  const auto intersect = [&](std::uint32_t a, std::uint32_t b) {
    while (a != b) {
      while (an.postorder_index[a] < an.postorder_index[b])
        a = static_cast<std::uint32_t>(an.idom[a].index());
      while (an.postorder_index[b] < an.postorder_index[a])
        b = static_cast<std::uint32_t>(an.idom[b].index());
    }
    return a;
  };

  an.idom[root] = NodeId{root};  // self-loop sentinel during iteration
  bool changed = true;
  while (changed) {
    changed = false;
    // Reverse postorder, skipping the root.
    for (auto it = an.postorder.rbegin(); it != an.postorder.rend(); ++it) {
      const std::uint32_t node = static_cast<std::uint32_t>(it->index());
      if (node == root) continue;
      std::uint32_t new_idom = Analysis::kUnreachable;
      for (const std::uint32_t p : adj.preds[node]) {
        if (an.postorder_index[p] == Analysis::kUnreachable) continue;
        if (!an.idom[p].valid()) continue;  // not yet processed
        new_idom = new_idom == Analysis::kUnreachable
                       ? p
                       : intersect(new_idom, p);
      }
      if (new_idom == Analysis::kUnreachable) continue;
      if (!an.idom[node].valid() ||
          static_cast<std::uint32_t>(an.idom[node].index()) != new_idom) {
        an.idom[node] = NodeId{new_idom};
        changed = true;
      }
    }
  }
  an.idom[root] = NodeId{};  // the root has no immediate dominator
}

/// Back arcs → natural loops → per-node membership counts.
void compute_loops(const Graph& g, const Adjacency& adj, Analysis& an) {
  const std::size_t n = g.num_nodes();
  an.loop_header.assign(n, NodeId{});
  an.loop_depth.assign(n, 0);

  // Collect back-arc latches per header (u → v with v dominating u).
  std::vector<std::vector<std::uint32_t>> latches(n);
  std::vector<std::uint32_t> headers;
  for (const Arc& a : g.arcs()) {
    if (!an.reachable(a.src) || !an.reachable(a.dst)) continue;
    if (!an.dominates(a.dst, a.src)) continue;
    const std::uint32_t h = static_cast<std::uint32_t>(a.dst.index());
    if (latches[h].empty()) headers.push_back(h);
    latches[h].push_back(static_cast<std::uint32_t>(a.src.index()));
  }

  // One natural loop per header (latches of the same header merge, the
  // standard convention): backward reach from each latch, stopping at
  // the header.
  std::vector<std::vector<bool>> in_loop_of(headers.size());
  for (std::size_t li = 0; li < headers.size(); ++li) {
    const std::uint32_t h = headers[li];
    std::vector<bool>& in_loop = in_loop_of[li];
    in_loop.assign(n, false);
    in_loop[h] = true;
    std::vector<std::uint32_t> work;
    for (const std::uint32_t latch : latches[h]) {
      if (in_loop[latch]) continue;
      in_loop[latch] = true;
      work.push_back(latch);
    }
    while (!work.empty()) {
      const std::uint32_t node = work.back();
      work.pop_back();
      for (const std::uint32_t p : adj.preds[node]) {
        if (in_loop[p]) continue;
        if (an.preorder_index[p] == Analysis::kUnreachable) continue;
        in_loop[p] = true;
        work.push_back(p);
      }
    }
    for (std::uint32_t i = 0; i < n; ++i)
      if (in_loop[i]) ++an.loop_depth[i];
  }

  // Innermost header per node: among the loops containing it, the one
  // whose header carries the greatest depth (ties: later header in
  // preorder, i.e. the more deeply nested entry).
  for (std::size_t li = 0; li < headers.size(); ++li) {
    const NodeId h{headers[li]};
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!in_loop_of[li][i]) continue;
      const NodeId cur = an.loop_header[i];
      if (!cur.valid() ||
          an.loop_depth[cur.index()] < an.loop_depth[h.index()] ||
          (an.loop_depth[cur.index()] == an.loop_depth[h.index()] &&
           an.preorder_index[cur.index()] < an.preorder_index[h.index()]))
        an.loop_header[i] = h;
    }
  }
}

}  // namespace

Analysis analyze(const Graph& g) {
  Analysis an;
  const Adjacency adj(g);
  depth_first_orders(g, adj, an);
  compute_dominators(g, adj, an);
  compute_loops(g, adj, an);
  return an;
}

}  // namespace ctdf::dfg
