#include "dfg/asmfmt.hpp"

#include <charconv>
#include <map>
#include <sstream>

#include "support/assert.hpp"

namespace ctdf::dfg {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == ';') {
      // ';' starts a comment in the line format; labels are advisory,
      // so substitute rather than complicate the grammar.
      out += ',';
      continue;
    }
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

const char* binop_name(lang::BinOp op) { return lang::to_string(op); }
const char* unop_name(lang::UnOp op) {
  return op == lang::UnOp::kNeg ? "neg" : "not";
}

}  // namespace

std::string write_asm(const Module& module) {
  const Graph& g = module.graph;
  std::ostringstream os;
  os << "; ctdf dataflow assembly v1\n";
  os << "memory " << module.memory_cells << "\n";
  for (const auto& [base, extent] : module.istructures)
    os << "istructure " << base << ' ' << extent << "\n";

  for (NodeId n : g.all_nodes()) {
    const Node& node = g.node(n);
    os << "node n" << n.value() << ' ' << to_string(node.kind);
    switch (node.kind) {
      case OpKind::kStart:
        os << " outs=" << node.num_outputs << " values=[";
        for (std::size_t i = 0; i < node.start_values.size(); ++i)
          os << (i ? "," : "") << node.start_values[i];
        os << ']';
        break;
      case OpKind::kEnd:
      case OpKind::kSynch:
        os << " ins=" << node.num_inputs;
        break;
      case OpKind::kBinOp:
        os << " op=" << binop_name(node.bop);
        break;
      case OpKind::kUnOp:
        os << " op=" << unop_name(node.uop);
        break;
      case OpKind::kLoad:
      case OpKind::kStore:
        os << " base=" << node.mem_base;
        break;
      case OpKind::kLoadIdx:
      case OpKind::kStoreIdx:
      case OpKind::kIStore:
      case OpKind::kIFetch:
        os << " base=" << node.mem_base << " extent=" << node.mem_extent;
        break;
      case OpKind::kLoopEntry:
      case OpKind::kLoopExit:
        os << " loop=" << node.loop.value() << " ports=" << node.num_inputs;
        break;
      case OpKind::kMacro:
        // head= is the original chain-head kind; op= (when the head is
        // an ALU op) and steps=[...] follow. Step tokens: b:<op>:<vp>:<lit>
        // (binop), u:<op> (unop), g:<vp>:<lit> (gate), s (synch).
        os << " ins=" << node.num_inputs
           << " head=" << to_string(node.head_kind);
        if (node.head_kind == OpKind::kBinOp)
          os << " op=" << binop_name(node.bop);
        else if (node.head_kind == OpKind::kUnOp)
          os << " op=" << unop_name(node.uop);
        os << " steps=[";
        for (std::size_t i = 0; i < node.steps.size(); ++i) {
          const FusedStep& s = node.steps[i];
          if (i) os << ',';
          switch (s.kind) {
            case OpKind::kBinOp:
              os << "b:" << binop_name(s.bop) << ':' << s.value_port << ':'
                 << s.literal;
              break;
            case OpKind::kUnOp:
              os << "u:" << unop_name(s.uop);
              break;
            case OpKind::kGate:
              os << "g:" << s.value_port << ':' << s.literal;
              break;
            case OpKind::kSynch:
              os << 's';
              break;
            default:
              CTDF_UNREACHABLE("bad FusedStep kind");
          }
        }
        os << ']';
        break;
      case OpKind::kSwitch:
      case OpKind::kMerge:
      case OpKind::kGate:
        break;
    }
    for (std::uint16_t p = 0; p < node.num_inputs; ++p)
      if (node.operands[p].is_literal)
        os << " in" << p << "=#" << node.operands[p].literal;
    if (!node.label.empty()) os << " label=\"" << escape(node.label) << '"';
    os << "\n";
  }

  for (const Arc& a : g.arcs()) {
    os << "arc n" << a.src.value() << '.' << a.src_port << " -> n"
       << a.dst.value() << '.' << a.dst_port;
    if (a.dummy) os << " dummy";
    os << "\n";
  }
  os << "start n" << g.start().value() << "\n";
  os << "end n" << g.end().value() << "\n";
  return os.str();
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, support::DiagnosticEngine& diags)
      : text_(text), diags_(diags) {}

  Module run() {
    std::size_t pos = 0;
    std::uint32_t lineno = 0;
    while (pos < text_.size()) {
      ++lineno;
      std::size_t eol = text_.find('\n', pos);
      if (eol == std::string_view::npos) eol = text_.size();
      parse_line(text_.substr(pos, eol - pos), lineno);
      pos = eol + 1;
    }
    return std::move(module_);
  }

 private:
  void error(std::uint32_t line, const std::string& msg) {
    diags_.error({line, 1}, msg);
  }

  static std::vector<std::string> split(std::string_view line) {
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && line[i] == ' ') ++i;
      if (i >= line.size()) break;
      if (line[i] == '"' || (line.substr(i).starts_with("label=\""))) {
        // Keep quoted label (possibly containing spaces) as one token.
        std::size_t start = i;
        i = line.find('"', i);
        CTDF_ASSERT(i != std::string_view::npos);
        ++i;
        while (i < line.size() && !(line[i] == '"' && line[i - 1] != '\\'))
          ++i;
        out.emplace_back(line.substr(start, std::min(i + 1, line.size()) -
                                                start));
        ++i;
        continue;
      }
      const std::size_t start = i;
      while (i < line.size() && line[i] != ' ') ++i;
      out.emplace_back(line.substr(start, i - start));
    }
    return out;
  }

  static bool to_int(std::string_view s, std::int64_t& v) {
    const auto r = std::from_chars(s.data(), s.data() + s.size(), v);
    return r.ec == std::errc{} && r.ptr == s.data() + s.size();
  }

  bool node_ref(std::string_view tok, NodeId& out, std::uint16_t& port,
                bool with_port) {
    if (!tok.starts_with('n')) return false;
    tok.remove_prefix(1);
    std::int64_t id = 0, p = 0;
    if (with_port) {
      const auto dot = tok.find('.');
      if (dot == std::string_view::npos) return false;
      if (!to_int(tok.substr(0, dot), id)) return false;
      if (!to_int(tok.substr(dot + 1), p)) return false;
    } else {
      if (!to_int(tok, id)) return false;
    }
    const auto it = remap_.find(static_cast<std::uint32_t>(id));
    if (it == remap_.end()) return false;
    out = it->second;
    port = static_cast<std::uint16_t>(p);
    return true;
  }

  void parse_line(std::string_view line, std::uint32_t lineno) {
    // Strip comments.
    if (const auto sc = line.find(';'); sc != std::string_view::npos)
      line = line.substr(0, sc);
    const auto toks = split(line);
    if (toks.empty()) return;
    const std::string& cmd = toks.front();
    std::int64_t a = 0, b = 0;

    if (cmd == "memory") {
      if (toks.size() == 2 && to_int(toks[1], a)) {
        module_.memory_cells = static_cast<std::size_t>(a);
      } else {
        error(lineno, "bad memory line");
      }
    } else if (cmd == "istructure") {
      if (toks.size() == 3 && to_int(toks[1], a) && to_int(toks[2], b)) {
        module_.istructures.emplace_back(static_cast<std::uint32_t>(a),
                                         static_cast<std::uint32_t>(b));
      } else {
        error(lineno, "bad istructure line");
      }
    } else if (cmd == "node") {
      parse_node(toks, lineno);
    } else if (cmd == "arc") {
      // arc nS.P -> nD.P [dummy]
      NodeId src, dst;
      std::uint16_t sp = 0, dp = 0;
      if (toks.size() < 4 || toks[2] != "->" ||
          !node_ref(toks[1], src, sp, true) ||
          !node_ref(toks[3], dst, dp, true)) {
        error(lineno, "bad arc line");
        return;
      }
      const bool dummy = toks.size() > 4 && toks[4] == "dummy";
      module_.graph.connect({src, sp}, {dst, dp}, dummy);
    } else if (cmd == "start" || cmd == "end") {
      NodeId n;
      std::uint16_t unused = 0;
      if (toks.size() != 2 || !node_ref(toks[1], n, unused, false)) {
        error(lineno, "bad " + cmd + " line");
        return;
      }
      if (cmd == "start")
        module_.graph.set_start(n);
      else
        module_.graph.set_end(n);
    } else {
      error(lineno, "unknown directive '" + cmd + "'");
    }
  }

  void parse_node(const std::vector<std::string>& toks, std::uint32_t lineno) {
    if (toks.size() < 3 || !toks[1].starts_with('n')) {
      error(lineno, "bad node line");
      return;
    }
    std::int64_t id = 0;
    if (!to_int(std::string_view(toks[1]).substr(1), id)) {
      error(lineno, "bad node id");
      return;
    }
    static const std::map<std::string, OpKind> kKinds = {
        {"start", OpKind::kStart},       {"end", OpKind::kEnd},
        {"binop", OpKind::kBinOp},       {"unop", OpKind::kUnOp},
        {"load", OpKind::kLoad},         {"load[]", OpKind::kLoadIdx},
        {"store", OpKind::kStore},       {"store[]", OpKind::kStoreIdx},
        {"switch", OpKind::kSwitch},     {"merge", OpKind::kMerge},
        {"synch", OpKind::kSynch},       {"loop-entry", OpKind::kLoopEntry},
        {"loop-exit", OpKind::kLoopExit},{"istore", OpKind::kIStore},
        {"ifetch", OpKind::kIFetch},     {"gate", OpKind::kGate},
        {"macro", OpKind::kMacro},
    };
    const auto kind_it = kKinds.find(toks[2]);
    if (kind_it == kKinds.end()) {
      error(lineno, "unknown operator kind '" + toks[2] + "'");
      return;
    }

    Node node;
    node.kind = kind_it->second;
    // Kind-default arities; overridden by fields below.
    switch (node.kind) {
      case OpKind::kStart: node.num_inputs = 0; node.num_outputs = 0; break;
      case OpKind::kEnd: node.num_inputs = 0; node.num_outputs = 0; break;
      case OpKind::kBinOp: node.num_inputs = 2; node.num_outputs = 1; break;
      case OpKind::kUnOp: node.num_inputs = 1; node.num_outputs = 1; break;
      case OpKind::kLoad: node.num_inputs = 1; node.num_outputs = 2; break;
      case OpKind::kLoadIdx: node.num_inputs = 2; node.num_outputs = 2; break;
      case OpKind::kStore: node.num_inputs = 2; node.num_outputs = 1; break;
      case OpKind::kStoreIdx: node.num_inputs = 3; node.num_outputs = 1; break;
      case OpKind::kSwitch: node.num_inputs = 2; node.num_outputs = 2; break;
      case OpKind::kMerge: node.num_inputs = 1; node.num_outputs = 1; break;
      case OpKind::kSynch: node.num_inputs = 0; node.num_outputs = 1; break;
      case OpKind::kLoopEntry:
      case OpKind::kLoopExit: break;
      case OpKind::kIStore: node.num_inputs = 3; node.num_outputs = 1; break;
      case OpKind::kIFetch: node.num_inputs = 2; node.num_outputs = 1; break;
      case OpKind::kGate: node.num_inputs = 2; node.num_outputs = 1; break;
      case OpKind::kMacro: node.num_inputs = 2; node.num_outputs = 1; break;
    }

    struct Lit {
      std::uint16_t port;
      std::int64_t value;
    };
    std::vector<Lit> literals;
    for (std::size_t i = 3; i < toks.size(); ++i) {
      const std::string& f = toks[i];
      const auto eq = f.find('=');
      if (eq == std::string::npos) {
        error(lineno, "bad field '" + f + "'");
        return;
      }
      const std::string key = f.substr(0, eq);
      const std::string val = f.substr(eq + 1);
      std::int64_t num = 0;
      if (key == "outs" && to_int(val, num)) {
        node.num_outputs = static_cast<std::uint16_t>(num);
      } else if (key == "ins" && to_int(val, num)) {
        node.num_inputs = static_cast<std::uint16_t>(num);
      } else if (key == "ports" && to_int(val, num)) {
        node.num_inputs = node.num_outputs =
            static_cast<std::uint16_t>(num);
      } else if (key == "base" && to_int(val, num)) {
        node.mem_base = static_cast<std::uint32_t>(num);
      } else if (key == "extent" && to_int(val, num)) {
        node.mem_extent = num;
      } else if (key == "loop" && to_int(val, num)) {
        node.loop = cfg::LoopId{static_cast<std::uint32_t>(num)};
      } else if (key == "values") {
        // values=[a,b,c]
        std::string body = val;
        if (body.size() < 2 || body.front() != '[' || body.back() != ']') {
          error(lineno, "bad values list");
          return;
        }
        body = body.substr(1, body.size() - 2);
        std::stringstream ss(body);
        std::string item;
        while (std::getline(ss, item, ',')) {
          std::int64_t v = 0;
          if (!to_int(item, v)) {
            error(lineno, "bad value '" + item + "'");
            return;
          }
          node.start_values.push_back(v);
        }
      } else if (key == "op") {
        if (!parse_op(node, val)) {
          error(lineno, "unknown op '" + val + "'");
          return;
        }
      } else if (key == "head") {
        // Must precede op= on the line (write_asm emits them in order).
        if (val == "binop") node.head_kind = OpKind::kBinOp;
        else if (val == "unop") node.head_kind = OpKind::kUnOp;
        else if (val == "gate") node.head_kind = OpKind::kGate;
        else if (val == "synch") node.head_kind = OpKind::kSynch;
        else {
          error(lineno, "unknown macro head '" + val + "'");
          return;
        }
      } else if (key == "steps") {
        std::string body = val;
        if (body.size() < 2 || body.front() != '[' || body.back() != ']') {
          error(lineno, "bad steps list");
          return;
        }
        body = body.substr(1, body.size() - 2);
        std::stringstream ss(body);
        std::string item;
        while (std::getline(ss, item, ',')) {
          FusedStep step;
          if (!parse_step(item, step)) {
            error(lineno, "bad step '" + item + "'");
            return;
          }
          node.steps.push_back(step);
        }
      } else if (key == "label") {
        node.label = unquote(val);
      } else if (key.starts_with("in") &&
                 to_int(std::string_view(key).substr(2), num) &&
                 val.starts_with('#')) {
        std::int64_t lit = 0;
        if (!to_int(std::string_view(val).substr(1), lit)) {
          error(lineno, "bad literal in '" + f + "'");
          return;
        }
        literals.push_back({static_cast<std::uint16_t>(num), lit});
      } else {
        error(lineno, "unknown field '" + key + "'");
        return;
      }
    }

    const NodeId added = module_.graph.add(std::move(node));
    for (const Lit& l : literals)
      module_.graph.bind_literal({added, l.port}, l.value);
    remap_[static_cast<std::uint32_t>(id)] = added;
  }

  static bool unop_from_name(const std::string& name, lang::UnOp& out) {
    if (name == "neg") out = lang::UnOp::kNeg;
    else if (name == "not") out = lang::UnOp::kNot;
    else return false;
    return true;
  }

  static bool binop_from_name(const std::string& name, lang::BinOp& out) {
    static const std::map<std::string, lang::BinOp> kOps = {
        {"+", lang::BinOp::kAdd}, {"-", lang::BinOp::kSub},
        {"*", lang::BinOp::kMul}, {"/", lang::BinOp::kDiv},
        {"%", lang::BinOp::kMod}, {"==", lang::BinOp::kEq},
        {"!=", lang::BinOp::kNe}, {"<", lang::BinOp::kLt},
        {"<=", lang::BinOp::kLe}, {">", lang::BinOp::kGt},
        {">=", lang::BinOp::kGe}, {"&&", lang::BinOp::kAnd},
        {"||", lang::BinOp::kOr},
    };
    const auto it = kOps.find(name);
    if (it == kOps.end()) return false;
    out = it->second;
    return true;
  }

  static bool parse_op(Node& node, const std::string& name) {
    if (node.kind == OpKind::kUnOp ||
        (node.kind == OpKind::kMacro && node.head_kind == OpKind::kUnOp))
      return unop_from_name(name, node.uop);
    return binop_from_name(name, node.bop);
  }

  /// Parses one steps=[...] token: b:<op>:<vp>:<lit> / u:<op> /
  /// g:<vp>:<lit> / s.
  static bool parse_step(const std::string& tok, FusedStep& step) {
    std::vector<std::string> parts;
    std::size_t pos = 0;
    while (pos <= tok.size()) {
      const std::size_t colon = tok.find(':', pos);
      if (colon == std::string::npos) {
        parts.push_back(tok.substr(pos));
        break;
      }
      parts.push_back(tok.substr(pos, colon - pos));
      pos = colon + 1;
    }
    if (parts.empty()) return false;
    std::int64_t num = 0;
    if (parts[0] == "b") {
      step.kind = OpKind::kBinOp;
      if (parts.size() != 4 || !binop_from_name(parts[1], step.bop))
        return false;
      if (!to_int(parts[2], num)) return false;
      step.value_port = static_cast<std::uint16_t>(num);
      if (!to_int(parts[3], step.literal)) return false;
      return true;
    }
    if (parts[0] == "u") {
      step.kind = OpKind::kUnOp;
      step.value_port = 0;
      return parts.size() == 2 && unop_from_name(parts[1], step.uop);
    }
    if (parts[0] == "g") {
      step.kind = OpKind::kGate;
      if (parts.size() != 3 || !to_int(parts[1], num)) return false;
      step.value_port = static_cast<std::uint16_t>(num);
      return to_int(parts[2], step.literal);
    }
    if (parts[0] == "s") {
      step.kind = OpKind::kSynch;
      return parts.size() == 1;
    }
    return false;
  }

  static std::string unquote(const std::string& s) {
    std::string out;
    std::size_t i = 0;
    if (i < s.size() && s[i] == '"') ++i;
    while (i < s.size()) {
      if (s[i] == '"' && i + 1 == s.size()) break;
      if (s[i] == '\\' && i + 1 < s.size()) {
        ++i;
        out += s[i] == 'n' ? '\n' : s[i];
      } else {
        out += s[i];
      }
      ++i;
    }
    return out;
  }

  std::string_view text_;
  support::DiagnosticEngine& diags_;
  Module module_;
  std::map<std::uint32_t, NodeId> remap_;
};

}  // namespace

Module parse_asm(std::string_view text, support::DiagnosticEngine& diags) {
  return Parser{text, diags}.run();
}

Module parse_asm_or_throw(std::string_view text) {
  support::DiagnosticEngine diags;
  Module m = parse_asm(text, diags);
  diags.throw_if_errors();
  return m;
}

}  // namespace ctdf::dfg
