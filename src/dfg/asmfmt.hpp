// A textual "dataflow assembly" for translated programs — the
// machine-code format of this repository's abstract ETS machine.
//
// Serializing the operator graph (plus its memory image description)
// lets compiled programs be inspected, diffed, stored, and re-executed
// without the frontend: `ctdf asm prog.ctdf > prog.dfa` and
// `ctdf exec prog.dfa`. The format round-trips exactly.
//
// Example:
//
//   ; ctdf dataflow assembly v1
//   memory 3
//   istructure 0 2
//   node n0 start outs=2 values=[0,0] label="start"
//   node n1 binop op=add in1=#1 label="x+1"
//   node n2 switch
//   node n3 loop-entry loop=0 ports=2
//   node n4 store base=1
//   node n5 end ins=2
//   arc n0.0 -> n1.0
//   arc n1.0 -> n2.0 dummy
//   start n0
//   end n5
//
// Literal-bound input ports are written as `inK=#value`; arcs carrying
// access/ack tokens carry the `dummy` flag (rendered dotted in DOT).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dfg/graph.hpp"
#include "support/diagnostics.hpp"

namespace ctdf::dfg {

/// A self-contained executable unit: the graph plus its memory image.
struct Module {
  Graph graph;
  std::size_t memory_cells = 0;
  /// (base, extent) of write-once regions.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> istructures;
};

[[nodiscard]] std::string write_asm(const Module& module);

/// Parses the textual form; problems go to diags (result is partial on
/// error).
[[nodiscard]] Module parse_asm(std::string_view text,
                               support::DiagnosticEngine& diags);

[[nodiscard]] Module parse_asm_or_throw(std::string_view text);

}  // namespace ctdf::dfg
