// Post-translation optimization passes over dataflow graphs.
//
// The translator already avoids redundant switches (paper Section 4);
// these passes clean up what only becomes visible at the graph level:
//
//  * constant-switch folding — a switch whose predicate port is bound
//    to a literal always routes the same way; its data arcs are wired
//    straight through and the untaken side becomes dead.
//  * unfireable-node elimination — a node with an unwired (non-literal)
//    input port can never fire (e.g. the untaken branch of a folded
//    switch); it and its downstream-only dependents are removed.
//  * dead-node elimination — a side-effect-free node whose outputs feed
//    nothing only consumes tokens; removing it lets those tokens die
//    earlier (fewer firings, less drain traffic after End).
//  * single-source merge collapsing — a merge with exactly one in-arc
//    is a wire (paper Sec. 4.2's "a join with a single source is
//    equivalent to no operator", applied transitively after other
//    passes expose new cases).
//
// All passes iterate to a joint fixpoint, then the graph is compacted
// (dead node ids removed, arcs remapped). Semantics preservation is
// covered by the schema-equivalence suite with these passes enabled.
#pragma once

#include <cstddef>

#include "dfg/graph.hpp"

namespace ctdf::dfg {

struct PassStats {
  std::size_t switches_folded = 0;
  std::size_t merges_collapsed = 0;
  std::size_t dead_removed = 0;       ///< output-unused removals
  std::size_t unfireable_removed = 0; ///< unwired-input removals
  std::size_t iterations = 0;

  [[nodiscard]] std::size_t total_removed() const {
    return switches_folded + merges_collapsed + dead_removed +
           unfireable_removed;
  }
};

/// Runs all passes to fixpoint and compacts the graph in place.
PassStats optimize_graph(Graph& g);

/// Monsoon fidelity: a real explicit-token-store instruction can name
/// only a small number of destinations (two, on Monsoon). The IR allows
/// unlimited fan-out; this pass inserts replication trees (pass-through
/// merge nodes) so that no (node, out-port) feeds more than
/// `max_destinations` arcs. Returns the number of replicate nodes
/// inserted. `max_destinations` must be ≥ 2.
std::size_t lower_fanout(Graph& g, std::size_t max_destinations = 2);

/// Largest number of arcs leaving any single (node, out-port).
[[nodiscard]] std::size_t max_fanout(const Graph& g);

/// Rebuilds `g` keeping only nodes with keep[node] == true; arcs
/// touching dropped nodes are discarded. start/end must be kept.
[[nodiscard]] Graph compact(const Graph& g, const std::vector<bool>& keep);

}  // namespace ctdf::dfg
