// Structural graph transforms that are not optimizer passes, plus the
// legacy optimize_graph entry point.
//
// The optimization passes themselves (constant-switch folding, merge
// collapsing, DCE, const-fold, switch-elim, synch-narrow, macro-op
// fusion) live in dfg/pass_manager.hpp as an ordered, individually
// toggleable pass list; optimize_graph here is a thin wrapper running
// the original peephole subset (PassSet::legacy()) for callers that
// predate the pass manager.
//
// What remains native to this header:
//
//  * lower_fanout — Monsoon-fidelity fan-out bounding via replication
//    trees (marked Node::replicate so merge-collapsing skips them).
//  * max_fanout / compact — graph measurement and rebuild helpers.
#pragma once

#include <cstddef>

#include "dfg/graph.hpp"

namespace ctdf::dfg {

struct PassStats {
  std::size_t switches_folded = 0;
  std::size_t merges_collapsed = 0;
  std::size_t dead_removed = 0;       ///< output-unused removals
  std::size_t unfireable_removed = 0; ///< unwired-input removals
  std::size_t iterations = 0;

  [[nodiscard]] std::size_t total_removed() const {
    return switches_folded + merges_collapsed + dead_removed +
           unfireable_removed;
  }
};

/// Runs all passes to fixpoint and compacts the graph in place.
PassStats optimize_graph(Graph& g);

/// Monsoon fidelity: a real explicit-token-store instruction can name
/// only a small number of destinations (two, on Monsoon). The IR allows
/// unlimited fan-out; this pass inserts replication trees (pass-through
/// merge nodes) so that no (node, out-port) feeds more than
/// `max_destinations` arcs. Returns the number of replicate nodes
/// inserted. `max_destinations` must be ≥ 2.
std::size_t lower_fanout(Graph& g, std::size_t max_destinations = 2);

/// Largest number of arcs leaving any single (node, out-port).
[[nodiscard]] std::size_t max_fanout(const Graph& g);

/// Rebuilds `g` keeping only nodes with keep[node] == true; arcs
/// touching dropped nodes are discarded. start/end must be kept.
[[nodiscard]] Graph compact(const Graph& g, const std::vector<bool>& keep);

}  // namespace ctdf::dfg
