// The DFG optimization pass manager: an ordered, individually
// toggleable pass list run to fixpoint, with per-pass counters
// replacing the old single "post_opt_removed" lump.
//
// Cleanup passes (iterated jointly to fixpoint, then the graph is
// compacted):
//
//  * fold-switch    — constant-predicate switch folding (dfg/passes.hpp
//                     provenance; the original peephole quartet).
//  * collapse-merge — single-source merge collapsing. Never touches the
//                     replicate trees lower_fanout inserts (Node::
//                     replicate), which are single-source by design.
//  * dce            — dead (output-unused) and unfireable (unwired
//                     input) node elimination.
//  * const-fold     — algebraic identities through pure ops: x+0, x-0,
//                     x*1, x/1 bypass the operator; x*0 / x%1 rewrite
//                     to a Gate materializing the absorbing constant
//                     (the token must still be consumed).
//  * switch-elim    — a Switch whose two sides feed identical consumer
//                     multisets degrades to a Gate (the predicate token
//                     is still consumed, preserving any ordering edge
//                     riding it); a Gate whose trigger is literal, or
//                     whose value and trigger arrive from one source
//                     port, is a wire and is bypassed.
//  * synch-narrow   — Synch trees shrink: literal operands drop, a
//                     synch feeding only another synch merges into it,
//                     and a 1-input synch feeding only value-
//                     insensitive ports (triggers/access tokens) is
//                     bypassed.
//
// Fusion (runs once, after cleanup, over a fresh loop-nest analysis):
//
//  * fuse           — collapses linear chains of single-consumer pure
//                     ops (BinOp/UnOp/Gate/Synch, every non-chain input
//                     literal) into kMacro nodes: one match, one token,
//                     N ALU steps. Chains are claimed in descending
//                     loop_depth order so inner-loop arcs are removed
//                     first; chains longer than fuse_limit split.
//
// Semantics preservation is proven by the schema-equivalence and fuzz
// differential sweeps with every pass enabled (tests/support/
// equivalence.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "dfg/analysis.hpp"
#include "dfg/graph.hpp"

namespace ctdf::dfg {

enum class PassId : std::uint8_t {
  kFoldSwitch,
  kCollapseMerge,
  kDce,
  kConstFold,
  kSwitchElim,
  kSynchNarrow,
  kFuse,
};

inline constexpr std::size_t kNumPasses = 7;

[[nodiscard]] const char* to_string(PassId p);
[[nodiscard]] std::optional<PassId> pass_from_name(std::string_view name);

/// An enabled-pass set (bitmask over PassId).
struct PassSet {
  std::uint8_t bits = 0;

  [[nodiscard]] static PassSet none() { return {}; }
  /// Every pass, fusion included (`--opt=all`).
  [[nodiscard]] static PassSet all() {
    return PassSet{static_cast<std::uint8_t>((1u << kNumPasses) - 1)};
  }
  /// Every cleanup pass, no fusion (`--post-opt`'s meaning).
  [[nodiscard]] static PassSet cleanup() {
    PassSet s = all();
    s.disable(PassId::kFuse);
    return s;
  }
  /// The original optimize_graph quartet (fold-switch, collapse-merge,
  /// dce) — the legacy `post_optimize` behavior.
  [[nodiscard]] static PassSet legacy() {
    PassSet s;
    s.enable(PassId::kFoldSwitch);
    s.enable(PassId::kCollapseMerge);
    s.enable(PassId::kDce);
    return s;
  }

  [[nodiscard]] bool enabled(PassId p) const {
    return bits & (1u << static_cast<std::uint8_t>(p));
  }
  void enable(PassId p) { bits |= (1u << static_cast<std::uint8_t>(p)); }
  void disable(PassId p) {
    bits &= static_cast<std::uint8_t>(~(1u << static_cast<std::uint8_t>(p)));
  }
  [[nodiscard]] bool any() const { return bits != 0; }

  friend bool operator==(const PassSet&, const PassSet&) = default;
};

/// Per-pass optimizer statistics (the `optimize` stage's trace
/// counters and `--stats-json` keys).
struct OptStats {
  std::size_t switches_folded = 0;   ///< fold-switch rewrites
  std::size_t merges_collapsed = 0;  ///< collapse-merge rewrites
  std::size_t dead_removed = 0;      ///< dce: output-unused removals
  std::size_t unfireable_removed = 0;  ///< dce: unwired-input removals
  std::size_t consts_folded = 0;     ///< const-fold rewrites
  std::size_t switches_elim = 0;     ///< switch-elim rewrites
  std::size_t synchs_narrowed = 0;   ///< synch-narrow rewrites
  std::size_t iterations = 0;        ///< joint cleanup fixpoint rounds

  std::size_t nodes_removed = 0;     ///< total nodes removed from the graph

  std::size_t chains_fused = 0;      ///< macro nodes created
  std::size_t ops_fused = 0;         ///< tail ops absorbed into macros
  /// Fused-chain length histogram: index i = chains of length i + 2
  /// ops, last bucket = 8 ops or longer.
  std::size_t fused_len_hist[7] = {};
  std::uint32_t max_loop_depth = 0;  ///< from the pre-fusion analysis
};

inline constexpr std::size_t kDefaultFuseLimit = 8;

/// Runs the enabled passes over `g` (cleanup to fixpoint, then fusion)
/// and compacts the graph. `fuse_limit` caps ops per macro (≥ 2).
OptStats run_passes(Graph& g, PassSet passes,
                    std::size_t fuse_limit = kDefaultFuseLimit);

}  // namespace ctdf::dfg
