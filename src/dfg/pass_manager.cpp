#include "dfg/pass_manager.hpp"

#include <algorithm>
#include <optional>
#include <vector>

#include "support/assert.hpp"

namespace ctdf::dfg {

const char* to_string(PassId p) {
  switch (p) {
    case PassId::kFoldSwitch: return "fold-switch";
    case PassId::kCollapseMerge: return "collapse-merge";
    case PassId::kDce: return "dce";
    case PassId::kConstFold: return "const-fold";
    case PassId::kSwitchElim: return "switch-elim";
    case PassId::kSynchNarrow: return "synch-narrow";
    case PassId::kFuse: return "fuse";
  }
  CTDF_UNREACHABLE("bad PassId");
}

std::optional<PassId> pass_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kNumPasses; ++i) {
    const PassId p = static_cast<PassId>(i);
    if (name == to_string(p)) return p;
  }
  return std::nullopt;
}

namespace {

/// Working representation: the arc list and an alive mask, edited
/// cheaply; node payloads are mutated in place on the graph and the
/// final shape is rebuilt once at the end.
struct Work {
  explicit Work(Graph& g) : g(g), alive(g.num_nodes(), true) {
    arcs = g.arcs();
  }

  Graph& g;
  std::vector<Arc> arcs;
  std::vector<bool> alive;

  [[nodiscard]] bool has_out_arc(NodeId n) const {
    return std::any_of(arcs.begin(), arcs.end(),
                       [&](const Arc& a) { return a.src == n; });
  }

  [[nodiscard]] bool port_wired(NodeId n, std::uint16_t p) const {
    return std::any_of(arcs.begin(), arcs.end(), [&](const Arc& a) {
      return a.dst == n && a.dst_port == p;
    });
  }

  [[nodiscard]] bool has_self_arc(NodeId n) const {
    return std::any_of(arcs.begin(), arcs.end(), [&](const Arc& a) {
      return a.src == n && a.dst == n;
    });
  }

  void drop_node_arcs(NodeId n) {
    std::erase_if(arcs, [&](const Arc& a) { return a.src == n || a.dst == n; });
  }

  /// Routes every in-arc of (n, value_port) straight to every consumer
  /// of n, then removes n — the shared "this operator is a wire" edit
  /// (merge collapsing, algebraic identities, redundant gates, synch
  /// bypass). The caller must have checked has_self_arc(n) is false.
  void bypass(NodeId n, std::uint16_t value_port) {
    std::vector<Arc> new_arcs;
    for (const Arc& in : arcs) {
      if (in.dst != n || in.dst_port != value_port) continue;
      for (const Arc& out : arcs) {
        if (out.src != n) continue;
        new_arcs.push_back(
            Arc{in.src, in.src_port, out.dst, out.dst_port, in.dummy});
      }
    }
    drop_node_arcs(n);
    arcs.insert(arcs.end(), new_arcs.begin(), new_arcs.end());
    alive[n.index()] = false;
  }
};

/// Side-effect-free kinds whose unused results may be dropped.
bool removable_when_unused(OpKind k) {
  switch (k) {
    case OpKind::kBinOp:
    case OpKind::kUnOp:
    case OpKind::kGate:
    case OpKind::kMerge:
    case OpKind::kSynch:
    case OpKind::kSwitch:
    case OpKind::kMacro:
    case OpKind::kLoad:
    case OpKind::kLoadIdx:
    case OpKind::kIFetch:
      return true;
    default:
      return false;
  }
}

/// Kinds that may be removed when they can never fire (an input port is
/// unwired). Loop entry/exit qualify too: the translator wires every
/// port, so an unwired port only arises when constant-switch folding
/// killed the control path feeding it — and that kills the sibling
/// ports' sources as well (they ride the same control paths), so the
/// whole node is dead and removal cascades consistently.
bool removable_when_unfireable(OpKind k) {
  switch (k) {
    case OpKind::kStart:
    case OpKind::kEnd:
      return false;
    default:
      return true;
  }
}

bool fold_constant_switches(Work& w, OptStats& stats) {
  bool changed = false;
  for (NodeId n : w.g.all_nodes()) {
    if (!w.alive[n.index()]) continue;
    const Node& node = w.g.node(n);
    if (node.kind != OpKind::kSwitch) continue;
    const Operand& pred = node.operands[port::kSwitchPred];
    if (!pred.is_literal) continue;
    const std::uint16_t taken =
        pred.literal != 0 ? port::kSwitchTrue : port::kSwitchFalse;

    // Route every data source directly to every taken-side consumer.
    std::vector<Arc> new_arcs;
    for (const Arc& in : w.arcs) {
      if (in.dst != n || in.dst_port != port::kSwitchData) continue;
      for (const Arc& out : w.arcs) {
        if (out.src != n || out.src_port != taken) continue;
        new_arcs.push_back(
            Arc{in.src, in.src_port, out.dst, out.dst_port, in.dummy});
      }
    }
    w.drop_node_arcs(n);
    w.arcs.insert(w.arcs.end(), new_arcs.begin(), new_arcs.end());
    w.alive[n.index()] = false;
    ++stats.switches_folded;
    changed = true;
  }
  return changed;
}

bool collapse_single_source_merges(Work& w, OptStats& stats) {
  bool changed = false;
  for (NodeId n : w.g.all_nodes()) {
    if (!w.alive[n.index()]) continue;
    const Node& node = w.g.node(n);
    if (node.kind != OpKind::kMerge) continue;
    // Replication trees inserted by lower_fanout are single-source by
    // design: collapsing one would restore the very fan-out the
    // lowering bounded.
    if (node.replicate) continue;
    const Arc* only_in = nullptr;
    bool single = true;
    for (const Arc& a : w.arcs) {
      if (a.dst != n) continue;
      if (only_in) {
        single = false;
        break;
      }
      only_in = &a;
    }
    if (!single || only_in == nullptr) continue;
    if (w.has_self_arc(n)) continue;
    w.bypass(n, only_in->dst_port);
    ++stats.merges_collapsed;
    changed = true;
  }
  return changed;
}

/// const-fold: algebraic identities through BinOps with one literal
/// operand. Identities (x+0, x-0, x*1, x/1) make the operator a wire;
/// absorbers (x*0, x%1, x&&0, x||c for c≠0) rewrite it to a Gate that
/// materializes the absorbing constant once the live token arrives (the
/// token must still be consumed — dropping it would change matching).
bool fold_constant_arith(Work& w, OptStats& stats) {
  bool changed = false;
  for (NodeId n : w.g.all_nodes()) {
    if (!w.alive[n.index()]) continue;
    Node& node = w.g.node(n);
    if (node.kind != OpKind::kBinOp) continue;
    const Operand& a = node.operands[0];
    const Operand& b = node.operands[1];
    if (a.is_literal == b.is_literal) continue;  // want exactly one literal
    const std::uint16_t value_port = a.is_literal ? 1 : 0;
    const std::int64_t lit = a.is_literal ? a.literal : b.literal;

    bool identity = false;
    bool absorb = false;
    std::int64_t absorbed = 0;
    switch (node.bop) {
      case lang::BinOp::kAdd:
        identity = lit == 0;
        break;
      case lang::BinOp::kSub:
        identity = lit == 0 && value_port == 0;
        break;
      case lang::BinOp::kMul:
        identity = lit == 1;
        absorb = lit == 0;
        break;
      case lang::BinOp::kDiv:
        identity = lit == 1 && value_port == 0;
        break;
      case lang::BinOp::kMod:
        absorb = lit == 1 && value_port == 0;
        break;
      case lang::BinOp::kAnd:
        absorb = lit == 0;
        break;
      case lang::BinOp::kOr:
        absorb = lit != 0;
        absorbed = 1;
        break;
      default:
        break;
    }
    if (!identity && !absorb) continue;

    if (identity) {
      if (w.has_self_arc(n)) continue;
      w.bypass(n, value_port);
    } else {
      // Rewrite to Gate: port 0 = the absorbing constant, port 1 = the
      // live operand as trigger.
      for (Arc& arc : w.arcs)
        if (arc.dst == n && arc.dst_port == value_port) arc.dst_port = 1;
      node.kind = OpKind::kGate;
      node.operands[0] = Operand{true, absorbed};
      node.operands[1] = Operand{};
    }
    ++stats.consts_folded;
    changed = true;
  }
  return changed;
}

/// switch-elim: a Switch whose true and false sides feed identical
/// consumer multisets routes the same way regardless of the predicate —
/// it degrades to a Gate (value = data, trigger = predicate), which
/// still consumes the predicate token, preserving any ordering edge
/// riding it. A Gate whose trigger is literal, or whose value and
/// trigger fan out from one source port, is a wire.
bool eliminate_redundant_switches(Work& w, OptStats& stats) {
  bool changed = false;
  for (NodeId n : w.g.all_nodes()) {
    if (!w.alive[n.index()]) continue;
    Node& node = w.g.node(n);

    if (node.kind == OpKind::kSwitch) {
      if (node.operands[port::kSwitchPred].is_literal) continue;  // fold-switch
      using Dest = std::tuple<std::uint32_t, std::uint16_t, bool>;
      std::vector<Dest> outs_true, outs_false;
      for (const Arc& out : w.arcs) {
        if (out.src != n) continue;
        auto& side =
            out.src_port == port::kSwitchTrue ? outs_true : outs_false;
        side.emplace_back(out.dst.value(), out.dst_port, out.dummy);
      }
      std::sort(outs_true.begin(), outs_true.end());
      std::sort(outs_false.begin(), outs_false.end());
      if (outs_true.empty() || outs_true != outs_false) continue;
      std::erase_if(w.arcs, [&](const Arc& a) {
        return a.src == n && a.src_port == port::kSwitchFalse;
      });
      node.kind = OpKind::kGate;  // [data, pred] → [value, trigger]
      node.num_outputs = 1;
      ++stats.switches_elim;
      changed = true;
      continue;
    }

    if (node.kind != OpKind::kGate) continue;
    if (node.operands[0].is_literal) continue;  // constant materializer
    if (node.operands[1].is_literal) {
      // Literal trigger: fires as soon as the value arrives — a wire.
      if (w.has_self_arc(n)) continue;
      w.bypass(n, 0);
      ++stats.switches_elim;
      changed = true;
      continue;
    }
    // Value and trigger from the same source port (each port fed by
    // exactly one arc): both tokens come from one emission, so the gate
    // adds nothing.
    const Arc* in_value = nullptr;
    const Arc* in_trigger = nullptr;
    bool simple = true;
    for (const Arc& arc : w.arcs) {
      if (arc.dst != n) continue;
      const Arc*& slot = arc.dst_port == 0 ? in_value : in_trigger;
      if (slot) {
        simple = false;
        break;
      }
      slot = &arc;
    }
    if (!simple || !in_value || !in_trigger) continue;
    if (in_value->src != in_trigger->src ||
        in_value->src_port != in_trigger->src_port)
      continue;
    if (w.has_self_arc(n)) continue;
    w.bypass(n, 0);
    ++stats.switches_elim;
    changed = true;
  }
  return changed;
}

/// True when (kind, port) ignores the arriving token's value — trigger
/// and access-token ports. A synch feeding only such ports can be
/// bypassed without changing any observable value.
bool value_insensitive(OpKind kind, std::uint16_t p) {
  switch (kind) {
    case OpKind::kSynch:
    case OpKind::kEnd:
      return true;
    case OpKind::kGate: return p == 1;
    case OpKind::kLoad: return p == 0;
    case OpKind::kLoadIdx: return p == 1;
    case OpKind::kStore: return p == 1;
    case OpKind::kStoreIdx: return p == 2;
    case OpKind::kIStore: return p == 2;
    case OpKind::kIFetch: return p == 1;
    default:
      return false;
  }
}

/// synch-narrow: drop literal synch operands, merge a synch whose only
/// consumer is another synch into it, and bypass a 1-input synch whose
/// consumers all ignore the token value.
bool narrow_synch_trees(Work& w, OptStats& stats) {
  bool changed = false;
  for (NodeId n : w.g.all_nodes()) {
    if (!w.alive[n.index()]) continue;
    Node& node = w.g.node(n);
    if (node.kind != OpKind::kSynch) continue;

    // (a) Literal operands never gate firing usefully: narrow them away.
    std::size_t live_ports = 0;
    for (const Operand& op : node.operands)
      if (!op.is_literal) ++live_ports;
    if (live_ports > 0 && live_ports < node.num_inputs) {
      std::vector<std::uint16_t> remap(node.num_inputs, 0);
      std::uint16_t next = 0;
      for (std::uint16_t p = 0; p < node.num_inputs; ++p)
        if (!node.operands[p].is_literal) remap[p] = next++;
      for (Arc& arc : w.arcs)
        if (arc.dst == n) arc.dst_port = remap[arc.dst_port];
      node.num_inputs = static_cast<std::uint16_t>(live_ports);
      node.operands.assign(live_ports, Operand{});
      ++stats.synchs_narrowed;
      changed = true;
    }

    // (b) Sole consumer is another synch: merge this one into it.
    const Arc* only_out = nullptr;
    bool single_out = true;
    for (const Arc& arc : w.arcs) {
      if (arc.src != n) continue;
      if (only_out) {
        single_out = false;
        break;
      }
      only_out = &arc;
    }
    if (single_out && only_out && only_out->dst != n) {
      const NodeId consumer = only_out->dst;
      const std::uint16_t cport = only_out->dst_port;
      Node& cnode = w.g.node(consumer);
      if (w.alive[consumer.index()] && cnode.kind == OpKind::kSynch) {
        std::size_t fan_in = 0;
        for (const Arc& arc : w.arcs)
          if (arc.dst == consumer && arc.dst_port == cport) ++fan_in;
        if (fan_in == 1) {
          // Consumer port layout: drop cport, append this synch's ports.
          const std::uint16_t base =
              static_cast<std::uint16_t>(cnode.num_inputs - 1);
          std::erase_if(w.arcs, [&](const Arc& arc) {
            return arc.src == n && arc.dst == consumer;
          });
          for (Arc& arc : w.arcs) {
            if (arc.dst == consumer && arc.dst_port > cport) --arc.dst_port;
            if (arc.dst == n) {
              arc.dst = consumer;
              arc.dst_port = static_cast<std::uint16_t>(base + arc.dst_port);
            }
          }
          std::vector<Operand> ops(cnode.operands);
          ops.erase(ops.begin() + cport);
          ops.insert(ops.end(), node.operands.begin(), node.operands.end());
          cnode.num_inputs =
              static_cast<std::uint16_t>(base + node.num_inputs);
          cnode.operands = std::move(ops);
          w.alive[n.index()] = false;
          ++stats.synchs_narrowed;
          changed = true;
          continue;
        }
      }
    }

    // (c) One input, every consumer ignores the value: a wire.
    if (node.num_inputs == 1 && !node.operands[0].is_literal) {
      bool all_insensitive = true;
      bool has_out = false;
      for (const Arc& arc : w.arcs) {
        if (arc.src != n) continue;
        has_out = true;
        const Node& dst = w.g.node(arc.dst);
        if (!value_insensitive(dst.kind, arc.dst_port)) {
          all_insensitive = false;
          break;
        }
      }
      if (has_out && all_insensitive && !w.has_self_arc(n)) {
        w.bypass(n, 0);
        ++stats.synchs_narrowed;
        changed = true;
      }
    }
  }
  return changed;
}

bool eliminate_dead_and_unfireable(Work& w, OptStats& stats) {
  bool changed = false;
  for (NodeId n : w.g.all_nodes()) {
    if (!w.alive[n.index()]) continue;
    const Node& node = w.g.node(n);

    if (removable_when_unused(node.kind) && !w.has_out_arc(n)) {
      w.drop_node_arcs(n);
      w.alive[n.index()] = false;
      ++stats.dead_removed;
      changed = true;
      continue;
    }

    if (!removable_when_unfireable(node.kind)) continue;
    bool unfireable = false;
    for (std::uint16_t p = 0; p < node.num_inputs; ++p) {
      if (node.operands[p].is_literal) continue;
      if (!w.port_wired(n, p)) {
        unfireable = true;
        break;
      }
    }
    // A node with no token inputs at all would never fire either, but
    // the translator does not produce those; treat them as unfireable
    // too for safety (all-literal inputs).
    if (!unfireable && node.num_inputs > 0) {
      unfireable = std::all_of(
          node.operands.begin(), node.operands.end(),
          [](const Operand& op) { return op.is_literal; });
    }
    if (unfireable) {
      w.drop_node_arcs(n);
      w.alive[n.index()] = false;
      ++stats.unfireable_removed;
      changed = true;
    }
  }
  return changed;
}

/// Writes the surviving arcs back and compacts away dead nodes.
void rebuild(Graph& g, const Work& w) {
  Graph rebuilt;
  std::vector<NodeId> remap(g.num_nodes());
  for (NodeId n : g.all_nodes()) {
    if (!w.alive[n.index()]) continue;
    Node copy = g.node(n);
    remap[n.index()] = rebuilt.add(std::move(copy));
  }
  rebuilt.set_start(remap[g.start().index()]);
  rebuilt.set_end(remap[g.end().index()]);
  for (const Arc& a : w.arcs) {
    CTDF_ASSERT(w.alive[a.src.index()] && w.alive[a.dst.index()]);
    rebuilt.connect({remap[a.src.index()], a.src_port},
                    {remap[a.dst.index()], a.dst_port}, a.dummy);
  }
  g = std::move(rebuilt);
}

/// Kinds a fused chain may contain: strict, pure, single-output.
bool fuseable_kind(OpKind k) {
  return k == OpKind::kBinOp || k == OpKind::kUnOp || k == OpKind::kGate ||
         k == OpKind::kSynch;
}

FusedStep make_step(const Node& t, std::uint16_t value_port) {
  FusedStep s;
  s.kind = t.kind;
  s.value_port = value_port;
  switch (t.kind) {
    case OpKind::kBinOp:
      s.bop = t.bop;
      s.literal = t.operands[value_port == 0 ? 1 : 0].literal;
      break;
    case OpKind::kUnOp:
      s.uop = t.uop;
      break;
    case OpKind::kGate:
      if (value_port == 1) s.literal = t.operands[0].literal;
      break;
    case OpKind::kSynch:
      break;
    default:
      CTDF_UNREACHABLE("not a fuseable tail");
  }
  return s;
}

/// fuse: collapse linear chains of single-consumer pure ops into
/// kMacro nodes, inner loops first.
void fuse_chains(Graph& g, const Analysis& an, std::size_t fuse_limit,
                 OptStats& stats) {
  const std::size_t n = g.num_nodes();
  std::vector<Arc> arcs = g.arcs();
  std::vector<bool> alive(n, true);

  // Per-node arc summaries for the chain-link test.
  std::vector<std::uint32_t> out_count(n, 0);
  std::vector<std::uint32_t> in_count(n, 0);
  std::vector<std::size_t> only_in(n, SIZE_MAX);
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    ++out_count[arcs[i].src.index()];
    ++in_count[arcs[i].dst.index()];
    only_in[arcs[i].dst.index()] = i;
  }

  // Sole non-literal input port of each node, or kNoPort.
  constexpr std::uint16_t kNoPort = UINT16_MAX;
  std::vector<std::uint16_t> value_port(n, kNoPort);
  for (NodeId node_id : g.all_nodes()) {
    const Node& node = g.node(node_id);
    std::uint16_t vp = kNoPort;
    bool sole = true;
    for (std::uint16_t p = 0; p < node.num_inputs; ++p) {
      if (node.operands[p].is_literal) continue;
      if (vp != kNoPort) {
        sole = false;
        break;
      }
      vp = p;
    }
    if (sole && vp != kNoPort) value_port[node_id.index()] = vp;
  }

  // prev[t] = s when t can be absorbed as s's fused tail: t's only
  // token input is s's only output arc, and both are fuseable kinds.
  // (Arcs into literal ports are impossible, so in_count == 1 means the
  // single arc lands on t's sole value port.)
  std::vector<NodeId> prev(n), next(n);
  for (std::size_t ti = 0; ti < n; ++ti) {
    const NodeId t{static_cast<std::uint32_t>(ti)};
    if (!fuseable_kind(g.node(t).kind)) continue;
    if (value_port[ti] == kNoPort) continue;
    if (in_count[ti] != 1) continue;
    const Arc& a = arcs[only_in[ti]];
    const NodeId s = a.src;
    if (s == t || a.src_port != 0) continue;
    if (!fuseable_kind(g.node(s).kind)) continue;
    if (g.node(s).num_outputs != 1 || out_count[s.index()] != 1) continue;
    prev[ti] = s;
    next[s.index()] = t;
  }

  // Chain heads: fuseable single-output nodes that extend forward but
  // are not themselves absorbable — then longest-first by loop depth so
  // inner-loop arcs are removed first.
  std::vector<NodeId> heads;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId h{static_cast<std::uint32_t>(i)};
    const Node& node = g.node(h);
    if (!fuseable_kind(node.kind) || node.num_outputs != 1) continue;
    if (!next[i].valid() || prev[i].valid()) continue;
    heads.push_back(h);
  }
  std::stable_sort(heads.begin(), heads.end(), [&](NodeId a, NodeId b) {
    return an.loop_depth[a.index()] > an.loop_depth[b.index()];
  });

  bool any = false;
  for (const NodeId h : heads) {
    // Walk the maximal chain (the visited guard is belt-and-braces: a
    // cycle of sole-consumer pure ops has no head by construction).
    std::vector<NodeId> chain{h};
    std::vector<bool> in_chain(n, false);
    in_chain[h.index()] = true;
    for (NodeId t = next[h.index()];
         t.valid() && !in_chain[t.index()];
         t = next[t.index()]) {
      chain.push_back(t);
      in_chain[t.index()] = true;
    }

    // Fuse fuse_limit-sized segments; a trailing singleton stays as-is.
    for (std::size_t begin = 0; begin + 1 < chain.size();
         begin += fuse_limit) {
      const std::size_t len = std::min(fuse_limit, chain.size() - begin);
      if (len < 2) break;
      const NodeId head = chain[begin];
      Node& head_node = g.node(head);
      head_node.head_kind = head_node.kind;
      head_node.kind = OpKind::kMacro;
      for (std::size_t i = 1; i < len; ++i) {
        const NodeId tail = chain[begin + i];
        head_node.steps.push_back(
            make_step(g.node(tail), value_port[tail.index()]));
        alive[tail.index()] = false;
      }
      const NodeId last = chain[begin + len - 1];
      // Drop the chain-internal arcs, then hand the last tail's output
      // to the macro.
      std::erase_if(arcs, [&](const Arc& a) {
        return a.src != last && in_chain[a.src.index()] &&
               static_cast<std::size_t>(
                   std::find(chain.begin() + begin, chain.end(), a.src) -
                   chain.begin()) < begin + len - 1;
      });
      for (Arc& a : arcs) {
        if (a.src != last) continue;
        a.src = head;
        a.src_port = 0;
      }
      ++stats.chains_fused;
      stats.ops_fused += len - 1;
      const std::size_t bucket = std::min<std::size_t>(len, 8) - 2;
      ++stats.fused_len_hist[bucket];
      any = true;
    }
  }
  if (!any) return;

  // Rebuild without the absorbed tails.
  Graph rebuilt;
  std::vector<NodeId> remap(n);
  for (NodeId node_id : g.all_nodes()) {
    if (!alive[node_id.index()]) continue;
    Node copy = g.node(node_id);
    remap[node_id.index()] = rebuilt.add(std::move(copy));
  }
  rebuilt.set_start(remap[g.start().index()]);
  rebuilt.set_end(remap[g.end().index()]);
  for (const Arc& a : arcs) {
    CTDF_ASSERT(alive[a.src.index()] && alive[a.dst.index()]);
    rebuilt.connect({remap[a.src.index()], a.src_port},
                    {remap[a.dst.index()], a.dst_port}, a.dummy);
  }
  g = std::move(rebuilt);
}

}  // namespace

OptStats run_passes(Graph& g, PassSet passes, std::size_t fuse_limit) {
  OptStats stats;
  if (!passes.any()) return stats;
  const std::size_t initial_nodes = g.num_nodes();

  PassSet cleanup = passes;
  cleanup.disable(PassId::kFuse);
  if (cleanup.any()) {
    Work w(g);
    bool dirty = false;
    bool changed = true;
    while (changed) {
      ++stats.iterations;
      changed = false;
      if (passes.enabled(PassId::kFoldSwitch))
        changed |= fold_constant_switches(w, stats);
      if (passes.enabled(PassId::kCollapseMerge))
        changed |= collapse_single_source_merges(w, stats);
      if (passes.enabled(PassId::kConstFold))
        changed |= fold_constant_arith(w, stats);
      if (passes.enabled(PassId::kSwitchElim))
        changed |= eliminate_redundant_switches(w, stats);
      if (passes.enabled(PassId::kSynchNarrow))
        changed |= narrow_synch_trees(w, stats);
      if (passes.enabled(PassId::kDce))
        changed |= eliminate_dead_and_unfireable(w, stats);
      dirty |= changed;
    }
    if (dirty) rebuild(g, w);
  }

  const Analysis an = analyze(g);
  stats.max_loop_depth = an.max_loop_depth();
  if (passes.enabled(PassId::kFuse) && fuse_limit >= 2)
    fuse_chains(g, an, fuse_limit, stats);

  stats.nodes_removed = initial_nodes - g.num_nodes();
  return stats;
}

}  // namespace ctdf::dfg
