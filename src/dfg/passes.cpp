#include "dfg/passes.hpp"

#include <algorithm>
#include <map>

#include "support/assert.hpp"

namespace ctdf::dfg {

namespace {

/// Working representation: adjacency by node for cheap edits.
struct Work {
  explicit Work(Graph& g) : g(g), alive(g.num_nodes(), true) {
    arcs = g.arcs();
  }

  Graph& g;
  std::vector<Arc> arcs;
  std::vector<bool> alive;

  [[nodiscard]] bool has_out_arc(NodeId n) const {
    return std::any_of(arcs.begin(), arcs.end(),
                       [&](const Arc& a) { return a.src == n; });
  }

  [[nodiscard]] bool port_wired(NodeId n, std::uint16_t p) const {
    return std::any_of(arcs.begin(), arcs.end(), [&](const Arc& a) {
      return a.dst == n && a.dst_port == p;
    });
  }

  void drop_node_arcs(NodeId n) {
    std::erase_if(arcs, [&](const Arc& a) { return a.src == n || a.dst == n; });
  }
};

/// Side-effect-free kinds whose unused results may be dropped.
bool removable_when_unused(OpKind k) {
  switch (k) {
    case OpKind::kBinOp:
    case OpKind::kUnOp:
    case OpKind::kGate:
    case OpKind::kMerge:
    case OpKind::kSynch:
    case OpKind::kSwitch:
    case OpKind::kLoad:
    case OpKind::kLoadIdx:
    case OpKind::kIFetch:
      return true;
    default:
      return false;
  }
}

/// Kinds that may be removed when they can never fire (an input port is
/// unwired). Loop entry/exit qualify too: the translator wires every
/// port, so an unwired port only arises when constant-switch folding
/// killed the control path feeding it — and that kills the sibling
/// ports' sources as well (they ride the same control paths), so the
/// whole node is dead and removal cascades consistently.
bool removable_when_unfireable(OpKind k) {
  switch (k) {
    case OpKind::kStart:
    case OpKind::kEnd:
      return false;
    default:
      return true;
  }
}

bool fold_constant_switches(Work& w, PassStats& stats) {
  bool changed = false;
  for (NodeId n : w.g.all_nodes()) {
    if (!w.alive[n.index()]) continue;
    const Node& node = w.g.node(n);
    if (node.kind != OpKind::kSwitch) continue;
    const Operand& pred = node.operands[port::kSwitchPred];
    if (!pred.is_literal) continue;
    const std::uint16_t taken =
        pred.literal != 0 ? port::kSwitchTrue : port::kSwitchFalse;

    // Route every data source directly to every taken-side consumer.
    std::vector<Arc> new_arcs;
    for (const Arc& in : w.arcs) {
      if (in.dst != n || in.dst_port != port::kSwitchData) continue;
      for (const Arc& out : w.arcs) {
        if (out.src != n || out.src_port != taken) continue;
        new_arcs.push_back(
            Arc{in.src, in.src_port, out.dst, out.dst_port, in.dummy});
      }
    }
    w.drop_node_arcs(n);
    w.arcs.insert(w.arcs.end(), new_arcs.begin(), new_arcs.end());
    w.alive[n.index()] = false;
    ++stats.switches_folded;
    changed = true;
  }
  return changed;
}

bool collapse_single_source_merges(Work& w, PassStats& stats) {
  bool changed = false;
  for (NodeId n : w.g.all_nodes()) {
    if (!w.alive[n.index()]) continue;
    if (w.g.node(n).kind != OpKind::kMerge) continue;
    const Arc* only_in = nullptr;
    bool single = true;
    for (const Arc& a : w.arcs) {
      if (a.dst != n) continue;
      if (only_in) {
        single = false;
        break;
      }
      only_in = &a;
    }
    if (!single || only_in == nullptr) continue;
    const Arc in = *only_in;
    std::vector<Arc> new_arcs;
    for (const Arc& out : w.arcs) {
      if (out.src != n) continue;
      new_arcs.push_back(
          Arc{in.src, in.src_port, out.dst, out.dst_port, in.dummy});
    }
    w.drop_node_arcs(n);
    w.arcs.insert(w.arcs.end(), new_arcs.begin(), new_arcs.end());
    w.alive[n.index()] = false;
    ++stats.merges_collapsed;
    changed = true;
  }
  return changed;
}

bool eliminate_dead_and_unfireable(Work& w, PassStats& stats) {
  bool changed = false;
  for (NodeId n : w.g.all_nodes()) {
    if (!w.alive[n.index()]) continue;
    const Node& node = w.g.node(n);

    if (removable_when_unused(node.kind) && !w.has_out_arc(n)) {
      w.drop_node_arcs(n);
      w.alive[n.index()] = false;
      ++stats.dead_removed;
      changed = true;
      continue;
    }

    if (!removable_when_unfireable(node.kind)) continue;
    bool unfireable = false;
    for (std::uint16_t p = 0; p < node.num_inputs; ++p) {
      if (node.operands[p].is_literal) continue;
      if (!w.port_wired(n, p)) {
        unfireable = true;
        break;
      }
    }
    // A node with no token inputs at all would never fire either, but
    // the translator does not produce those; treat them as unfireable
    // too for safety (all-literal inputs).
    if (!unfireable && node.num_inputs > 0) {
      unfireable = std::all_of(
          node.operands.begin(), node.operands.end(),
          [](const Operand& op) { return op.is_literal; });
    }
    if (unfireable) {
      w.drop_node_arcs(n);
      w.alive[n.index()] = false;
      ++stats.unfireable_removed;
      changed = true;
    }
  }
  return changed;
}

}  // namespace

Graph compact(const Graph& g, const std::vector<bool>& keep) {
  CTDF_ASSERT(keep.size() == g.num_nodes());
  CTDF_ASSERT(keep[g.start().index()] && keep[g.end().index()]);
  Graph out;
  std::vector<NodeId> remap(g.num_nodes());
  for (NodeId n : g.all_nodes()) {
    if (!keep[n.index()]) continue;
    Node copy = g.node(n);
    remap[n.index()] = out.add(std::move(copy));
  }
  out.set_start(remap[g.start().index()]);
  out.set_end(remap[g.end().index()]);
  for (const Arc& a : g.arcs()) {
    if (!keep[a.src.index()] || !keep[a.dst.index()]) continue;
    out.connect({remap[a.src.index()], a.src_port},
                {remap[a.dst.index()], a.dst_port}, a.dummy);
  }
  return out;
}

std::size_t max_fanout(const Graph& g) {
  std::map<std::pair<std::uint32_t, std::uint16_t>, std::size_t> counts;
  for (const Arc& a : g.arcs()) ++counts[{a.src.value(), a.src_port}];
  std::size_t best = 0;
  for (const auto& [port, c] : counts) best = std::max(best, c);
  return best;
}

std::size_t lower_fanout(Graph& g, std::size_t max_destinations) {
  CTDF_ASSERT(max_destinations >= 2);
  std::size_t inserted = 0;
  // Iterate until no out-port exceeds the bound. Each round groups a
  // port's excess arcs under fresh replicate (merge) nodes; the new
  // nodes' own fan-out is bounded on the next round, yielding a tree.
  bool changed = true;
  while (changed) {
    changed = false;
    // Collect arcs by source port.
    std::map<std::pair<std::uint32_t, std::uint16_t>, std::vector<std::size_t>>
        by_port;
    const auto& arcs = g.arcs();
    for (std::size_t i = 0; i < arcs.size(); ++i)
      by_port[{arcs[i].src.value(), arcs[i].src_port}].push_back(i);

    for (const auto& [port, idxs] : by_port) {
      if (idxs.size() <= max_destinations) continue;
      changed = true;
      // Split destinations into max_destinations groups, each behind a
      // replicate node (except groups of one, wired directly).
      const NodeId src{port.first};
      const std::uint16_t src_port = port.second;
      const std::size_t groups = max_destinations;
      std::vector<Arc> moved;
      for (const std::size_t i : idxs) moved.push_back(arcs[i]);
      // Remove the original arcs (by identity match, one at a time).
      Graph rebuilt;
      std::vector<NodeId> remap(g.num_nodes());
      for (NodeId n : g.all_nodes()) {
        Node copy = g.node(n);
        remap[n.index()] = rebuilt.add(std::move(copy));
      }
      rebuilt.set_start(remap[g.start().index()]);
      rebuilt.set_end(remap[g.end().index()]);
      std::vector<bool> drop(arcs.size(), false);
      for (const std::size_t i : idxs) drop[i] = true;
      for (std::size_t i = 0; i < arcs.size(); ++i) {
        if (drop[i]) continue;
        rebuilt.connect({remap[arcs[i].src.index()], arcs[i].src_port},
                        {remap[arcs[i].dst.index()], arcs[i].dst_port},
                        arcs[i].dummy);
      }
      const bool dummy = moved.front().dummy;
      for (std::size_t gi = 0; gi < groups; ++gi) {
        // Destinations gi, gi+groups, gi+2*groups, ...
        std::vector<Arc> mine;
        for (std::size_t k = gi; k < moved.size(); k += groups)
          mine.push_back(moved[k]);
        if (mine.empty()) continue;
        if (mine.size() == 1) {
          rebuilt.connect({remap[src.index()], src_port},
                          {remap[mine[0].dst.index()], mine[0].dst_port},
                          mine[0].dummy);
          continue;
        }
        const NodeId rep = rebuilt.add_merge("rep");
        ++inserted;
        rebuilt.connect({remap[src.index()], src_port}, {rep, 0}, dummy);
        for (const Arc& a : mine)
          rebuilt.connect({rep, 0}, {remap[a.dst.index()], a.dst_port},
                          a.dummy);
      }
      g = std::move(rebuilt);
      break;  // arc indices are stale; restart the round
    }
  }
  return inserted;
}

PassStats optimize_graph(Graph& g) {
  PassStats stats;
  Work w(g);
  bool changed = true;
  while (changed) {
    ++stats.iterations;
    changed = false;
    changed |= fold_constant_switches(w, stats);
    changed |= collapse_single_source_merges(w, stats);
    changed |= eliminate_dead_and_unfireable(w, stats);
  }
  if (stats.total_removed() == 0) return stats;

  // Rebuild: write surviving arcs back, then compact away dead nodes.
  Graph rebuilt;
  std::vector<NodeId> remap(g.num_nodes());
  for (NodeId n : g.all_nodes()) {
    if (!w.alive[n.index()]) continue;
    Node copy = g.node(n);
    remap[n.index()] = rebuilt.add(std::move(copy));
  }
  rebuilt.set_start(remap[g.start().index()]);
  rebuilt.set_end(remap[g.end().index()]);
  for (const Arc& a : w.arcs) {
    CTDF_ASSERT(w.alive[a.src.index()] && w.alive[a.dst.index()]);
    rebuilt.connect({remap[a.src.index()], a.src_port},
                    {remap[a.dst.index()], a.dst_port}, a.dummy);
  }
  g = std::move(rebuilt);
  return stats;
}

}  // namespace ctdf::dfg
