#include "dfg/passes.hpp"

#include <algorithm>
#include <map>

#include "dfg/pass_manager.hpp"
#include "support/assert.hpp"

namespace ctdf::dfg {

Graph compact(const Graph& g, const std::vector<bool>& keep) {
  CTDF_ASSERT(keep.size() == g.num_nodes());
  CTDF_ASSERT(keep[g.start().index()] && keep[g.end().index()]);
  Graph out;
  std::vector<NodeId> remap(g.num_nodes());
  for (NodeId n : g.all_nodes()) {
    if (!keep[n.index()]) continue;
    Node copy = g.node(n);
    remap[n.index()] = out.add(std::move(copy));
  }
  out.set_start(remap[g.start().index()]);
  out.set_end(remap[g.end().index()]);
  for (const Arc& a : g.arcs()) {
    if (!keep[a.src.index()] || !keep[a.dst.index()]) continue;
    out.connect({remap[a.src.index()], a.src_port},
                {remap[a.dst.index()], a.dst_port}, a.dummy);
  }
  return out;
}

std::size_t max_fanout(const Graph& g) {
  std::map<std::pair<std::uint32_t, std::uint16_t>, std::size_t> counts;
  for (const Arc& a : g.arcs()) ++counts[{a.src.value(), a.src_port}];
  std::size_t best = 0;
  for (const auto& [port, c] : counts) best = std::max(best, c);
  return best;
}

std::size_t lower_fanout(Graph& g, std::size_t max_destinations) {
  CTDF_ASSERT(max_destinations >= 2);
  std::size_t inserted = 0;
  // Iterate until no out-port exceeds the bound. Each round groups a
  // port's excess arcs under fresh replicate (merge) nodes; the new
  // nodes' own fan-out is bounded on the next round, yielding a tree.
  bool changed = true;
  while (changed) {
    changed = false;
    // Collect arcs by source port.
    std::map<std::pair<std::uint32_t, std::uint16_t>, std::vector<std::size_t>>
        by_port;
    const auto& arcs = g.arcs();
    for (std::size_t i = 0; i < arcs.size(); ++i)
      by_port[{arcs[i].src.value(), arcs[i].src_port}].push_back(i);

    for (const auto& [port, idxs] : by_port) {
      if (idxs.size() <= max_destinations) continue;
      changed = true;
      // Split destinations into max_destinations groups, each behind a
      // replicate node (except groups of one, wired directly).
      const NodeId src{port.first};
      const std::uint16_t src_port = port.second;
      const std::size_t groups = max_destinations;
      std::vector<Arc> moved;
      for (const std::size_t i : idxs) moved.push_back(arcs[i]);
      // Remove the original arcs (by identity match, one at a time).
      Graph rebuilt;
      std::vector<NodeId> remap(g.num_nodes());
      for (NodeId n : g.all_nodes()) {
        Node copy = g.node(n);
        remap[n.index()] = rebuilt.add(std::move(copy));
      }
      rebuilt.set_start(remap[g.start().index()]);
      rebuilt.set_end(remap[g.end().index()]);
      std::vector<bool> drop(arcs.size(), false);
      for (const std::size_t i : idxs) drop[i] = true;
      for (std::size_t i = 0; i < arcs.size(); ++i) {
        if (drop[i]) continue;
        rebuilt.connect({remap[arcs[i].src.index()], arcs[i].src_port},
                        {remap[arcs[i].dst.index()], arcs[i].dst_port},
                        arcs[i].dummy);
      }
      const bool dummy = moved.front().dummy;
      for (std::size_t gi = 0; gi < groups; ++gi) {
        // Destinations gi, gi+groups, gi+2*groups, ...
        std::vector<Arc> mine;
        for (std::size_t k = gi; k < moved.size(); k += groups)
          mine.push_back(moved[k]);
        if (mine.empty()) continue;
        if (mine.size() == 1) {
          rebuilt.connect({remap[src.index()], src_port},
                          {remap[mine[0].dst.index()], mine[0].dst_port},
                          mine[0].dummy);
          continue;
        }
        const NodeId rep = rebuilt.add_merge("rep");
        // Replicate trees are single-source by design: mark the node so
        // collapse-merge never undoes the fan-out bound (the pass skips
        // Node::replicate).
        rebuilt.node(rep).replicate = true;
        ++inserted;
        rebuilt.connect({remap[src.index()], src_port}, {rep, 0}, dummy);
        for (const Arc& a : mine)
          rebuilt.connect({rep, 0}, {remap[a.dst.index()], a.dst_port},
                          a.dummy);
      }
      g = std::move(rebuilt);
      break;  // arc indices are stale; restart the round
    }
  }
  return inserted;
}

PassStats optimize_graph(Graph& g) {
  // Kept as the legacy entry point: the original peephole quartet is
  // now the fold-switch/collapse-merge/dce subset of the pass manager.
  const OptStats full = run_passes(g, PassSet::legacy());
  PassStats stats;
  stats.switches_folded = full.switches_folded;
  stats.merges_collapsed = full.merges_collapsed;
  stats.dead_removed = full.dead_removed;
  stats.unfireable_removed = full.unfireable_removed;
  stats.iterations = full.iterations;
  return stats;
}

}  // namespace ctdf::dfg
