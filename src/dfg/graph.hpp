// The dataflow-graph intermediate representation (paper Section 2.2).
//
// Nodes are dataflow operators; arcs connect (node, out-port) to
// (node, in-port). Arcs carrying only synchronization ("dummy") tokens
// — the access tokens of the paper — are flagged so DOT output renders
// them dotted, as in the paper's figures.
//
// Conventions:
//  * An input port may be bound to an integer literal instead of an
//    arc (constants are operands, not operators; a zero-input operator
//    would fire unboundedly).
//  * Fan-out: one out-port may feed any number of in-ports (the
//    machine replicates the token).
//  * Fan-in: several arcs may target the same in-port only where their
//    firings are mutually exclusive per context (merge semantics); the
//    simulator traps a genuine collision.
//
// Operator port layouts (fixed, see port constants below):
//   Load      in: [access]               out: [value, ack]
//   LoadIdx   in: [index, access]        out: [value, ack]
//   Store     in: [value, access]        out: [ack]
//   StoreIdx  in: [value, index, access] out: [ack]
//   Switch    in: [data, pred]           out: [true, false]
//   Merge     in: [in]                   out: [out]       (non-strict)
//   Synch     in: [0..n-1]               out: [out]
//   LoopEntry in: [0..n-1]               out: [0..n-1]    (port i ↔ i)
//   LoopExit  in: [0..n-1]               out: [0..n-1]    (non-strict)
//   IStore    in: [value, index, trigger] out: [ack]
//   IFetch    in: [index, trigger]       out: [value]
//   Gate      in: [value, trigger]       out: [value]
//   BinOp     in: [lhs, rhs]             out: [value]
//   UnOp      in: [operand]              out: [value]
//   Start     in: []                     out: [0..n-1]    (fired at boot)
//   End       in: [0..n-1]               out: []          (halts machine)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cfg/graph.hpp"
#include "lang/ast.hpp"
#include "support/ids.hpp"
#include "support/index_map.hpp"

namespace ctdf::dfg {

struct NodeTag;
using NodeId = support::Id<NodeTag>;

enum class OpKind : std::uint8_t {
  kStart,
  kEnd,
  kBinOp,
  kUnOp,
  kLoad,
  kLoadIdx,
  kStore,
  kStoreIdx,
  kSwitch,
  kMerge,
  kSynch,
  kLoopEntry,
  kLoopExit,
  kIStore,
  kIFetch,
  /// out = in[value] once in[trigger] has arrived; used to materialize a
  /// fresh value-carrying token (e.g. `x := 5` after memory elimination,
  /// where the new token must consume/replace the old one).
  kGate,
  /// A fused chain of single-consumer pure ops (pass manager's
  /// fuse_chains): the node matches and fires like its original head
  /// operator (Node::head_kind), then applies Node::steps to the result
  /// in order — one match, one emitted token, N ALU steps.
  kMacro,
};

/// Number of OpKind enumerators — the size of any per-kind table (e.g.
/// RunStats::fired_by_kind).
inline constexpr std::size_t kNumOpKinds = 17;
static_assert(static_cast<std::size_t>(OpKind::kMacro) + 1 == kNumOpKinds,
              "kNumOpKinds must track the OpKind enumerator count");

[[nodiscard]] const char* to_string(OpKind k);

/// Operators that address the token store (split-phase memory or
/// I-structure cells).
[[nodiscard]] constexpr bool is_memory_op(OpKind k) {
  switch (k) {
    case OpKind::kLoad:
    case OpKind::kLoadIdx:
    case OpKind::kStore:
    case OpKind::kStoreIdx:
    case OpKind::kIStore:
    case OpKind::kIFetch:
      return true;
    default:
      return false;
  }
}

/// Memory operators that mutate cells (an acknowledgement still in
/// flight when End fires means memory is not final).
[[nodiscard]] constexpr bool is_write_op(OpKind k) {
  return k == OpKind::kStore || k == OpKind::kStoreIdx ||
         k == OpKind::kIStore;
}

/// Operators that forward each arriving token immediately instead of
/// rendezvousing in a matching slot, regardless of machine
/// configuration. (LoopEntry is additionally non-strict under pipelined
/// loop control — a machine-mode property, so not encoded here.)
[[nodiscard]] constexpr bool is_non_strict_base(OpKind k) {
  return k == OpKind::kMerge || k == OpKind::kLoopExit;
}

/// Well-known port indices.
namespace port {
// Load / LoadIdx outputs.
inline constexpr std::uint16_t kLoadValue = 0;
inline constexpr std::uint16_t kLoadAck = 1;
// Switch inputs / outputs.
inline constexpr std::uint16_t kSwitchData = 0;
inline constexpr std::uint16_t kSwitchPred = 1;
inline constexpr std::uint16_t kSwitchTrue = 0;
inline constexpr std::uint16_t kSwitchFalse = 1;
}  // namespace port

struct Operand {
  bool is_literal = false;
  std::int64_t literal = 0;
};

/// One absorbed tail of a kMacro node. The chained value enters on
/// `value_port`; every other input port of the original tail was
/// literal-bound, so the step is a pure function of one value:
///   kBinOp: v' = value_port == 0 ? bop(v, literal) : bop(literal, v)
///   kUnOp:  v' = uop(v)
///   kGate:  v' = value_port == 0 ? v : literal   (trigger side chained)
///   kSynch: v' = 0
struct FusedStep {
  OpKind kind = OpKind::kBinOp;  ///< kBinOp / kUnOp / kGate / kSynch
  lang::BinOp bop = lang::BinOp::kAdd;
  lang::UnOp uop = lang::UnOp::kNeg;
  std::uint16_t value_port = 0;  ///< port the chained value arrives on
  std::int64_t literal = 0;      ///< the other port's literal (kBinOp/kGate)
};

/// Applies one fused step to the chained value.
[[nodiscard]] std::int64_t apply_step(const FusedStep& s, std::int64_t v);

struct Node {
  OpKind kind = OpKind::kSynch;
  std::uint16_t num_inputs = 0;
  std::uint16_t num_outputs = 0;

  lang::BinOp bop = lang::BinOp::kAdd;  ///< kBinOp
  lang::UnOp uop = lang::UnOp::kNeg;    ///< kUnOp

  std::uint32_t mem_base = 0;   ///< memory ops: base cell
  std::int64_t mem_extent = 1;  ///< memory ops: cells (index wrapping)

  cfg::LoopId loop;  ///< kLoopEntry / kLoopExit

  std::vector<Operand> operands;            ///< size num_inputs
  std::vector<std::int64_t> start_values;   ///< kStart: initial token values

  /// kMacro: the original kind of the chain head (how the matched
  /// inputs produce the initial value) and the absorbed tail steps.
  OpKind head_kind = OpKind::kBinOp;
  std::vector<FusedStep> steps;

  /// Set on the pass-through merges lower_fanout inserts: replication
  /// trees deliberately have a single source, so merge-collapsing must
  /// never fold them back into the unbounded fan-out they lower.
  bool replicate = false;

  std::string label;  ///< debug / DOT
};

struct Arc {
  NodeId src;
  std::uint16_t src_port = 0;
  NodeId dst;
  std::uint16_t dst_port = 0;
  bool dummy = false;  ///< access/ack token (dotted in the paper's figures)
};

struct PortRef {
  NodeId node;
  std::uint16_t port = 0;

  [[nodiscard]] bool valid() const { return node.valid(); }
  friend bool operator==(const PortRef&, const PortRef&) = default;
};

class Graph {
 public:
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_arcs() const { return arcs_.size(); }
  [[nodiscard]] const Node& node(NodeId n) const { return nodes_[n]; }
  [[nodiscard]] Node& node(NodeId n) { return nodes_[n]; }
  [[nodiscard]] const std::vector<Arc>& arcs() const { return arcs_; }

  [[nodiscard]] NodeId start() const { return start_; }
  [[nodiscard]] NodeId end() const { return end_; }
  void set_start(NodeId n) { start_ = n; }
  void set_end(NodeId n) { end_ = n; }

  /// Adds a node; `label` is for debugging/DOT only.
  NodeId add(Node node);

  // Convenience constructors.
  NodeId add_binop(lang::BinOp op, std::string label = {});
  NodeId add_unop(lang::UnOp op, std::string label = {});
  NodeId add_load(std::uint32_t base, std::string label = {});
  NodeId add_load_idx(std::uint32_t base, std::int64_t extent,
                      std::string label = {});
  NodeId add_store(std::uint32_t base, std::string label = {});
  NodeId add_store_idx(std::uint32_t base, std::int64_t extent,
                       std::string label = {});
  NodeId add_switch(std::string label = {});
  NodeId add_merge(std::string label = {});
  NodeId add_synch(std::uint16_t arity, std::string label = {});
  NodeId add_loop_entry(cfg::LoopId loop, std::uint16_t ports,
                        std::string label = {});
  NodeId add_loop_exit(cfg::LoopId loop, std::uint16_t ports,
                       std::string label = {});
  NodeId add_istore(std::uint32_t base, std::int64_t extent,
                    std::string label = {});
  NodeId add_ifetch(std::uint32_t base, std::int64_t extent,
                    std::string label = {});
  NodeId add_gate(std::string label = {});

  /// Connects src's out-port to dst's in-port.
  void connect(PortRef src, PortRef dst, bool dummy);

  /// Binds dst's in-port to a constant.
  void bind_literal(PortRef dst, std::int64_t value);

  /// Out-arcs of (node, port).
  [[nodiscard]] std::vector<Arc> out_arcs(NodeId n) const;

  /// Number of arcs into (node, port).
  [[nodiscard]] std::size_t fan_in(PortRef p) const;

  [[nodiscard]] std::vector<NodeId> all_nodes() const;

  /// Structural checks; returns problems (empty = valid).
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Graphviz rendering (dummy arcs dotted, as in the paper).
  [[nodiscard]] std::string to_dot() const;

 private:
  support::IndexMap<NodeId, Node> nodes_;
  std::vector<Arc> arcs_;
  NodeId start_;
  NodeId end_;
};

/// Static size/shape statistics used by the graph-size and
/// switch-elimination experiments.
struct GraphStats {
  std::size_t nodes = 0;
  std::size_t arcs = 0;
  std::size_t dummy_arcs = 0;
  std::size_t switches = 0;
  std::size_t merges = 0;
  std::size_t synchs = 0;
  std::size_t loads = 0;
  std::size_t stores = 0;
  std::size_t alu_ops = 0;
  std::size_t loop_nodes = 0;
};

[[nodiscard]] GraphStats compute_stats(const Graph& g);

}  // namespace ctdf::dfg
