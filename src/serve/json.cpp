#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ctdf::serve {

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

namespace {

/// Hostile inputs must fail cleanly, not smash the stack.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    JsonValue v;
    if (!value(v, 0)) {
      if (error) *error = error_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (error) *error = at("trailing content after JSON value");
      return std::nullopt;
    }
    return v;
  }

 private:
  std::string at(const char* msg) {
    return std::string(msg) + " at byte " + std::to_string(pos_);
  }
  bool fail(const char* msg) {
    if (error_.empty()) error_ = at(msg);
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(const char* word, std::size_t n) {
    if (text_.size() - pos_ < n || text_.compare(pos_, n, word) != 0)
      return fail("invalid literal");
    pos_ += n;
    return true;
  }

  bool value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return literal("null", 4);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return literal("true", 4);
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return literal("false", 5);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return string_body(out.string);
      case '[':
        return array_body(out, depth);
      case '{':
        return object_body(out, depth);
      default:
        return number_body(out);
    }
  }

  bool number_body(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return fail("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(d)) {
      pos_ = start;
      return fail("malformed number");
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = d;
    return true;
  }

  bool string_body(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("unescaped control character in string");
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      if (++pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (!hex4(out)) return false;
          break;
        }
        default:
          return fail("bad escape in string");
      }
    }
    return fail("unterminated string");
  }

  /// \uXXXX → UTF-8 (surrogate pairs unsupported: the protocol's
  /// strings are program text and identifiers; reject rather than
  /// silently mangle).
  bool hex4(std::string& out) {
    if (text_.size() - pos_ < 4) return fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_ + i];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= h - '0';
      else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
      else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
      else return fail("bad \\u escape");
    }
    pos_ += 4;
    if (code >= 0xD800 && code <= 0xDFFF)
      return fail("surrogate \\u escapes unsupported");
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return true;
  }

  bool array_body(JsonValue& out, int depth) {
    ++pos_;  // '['
    out.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue elem;
      if (!value(elem, depth + 1)) return false;
      out.array.push_back(std::move(elem));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  bool object_body(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"')
        return fail("expected a string key in object");
      std::string key;
      if (!string_body(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' in object");
      JsonValue val;
      if (!value(val, depth + 1)) return false;
      out.object.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

void render_to(const JsonValue& v, std::string& out) {
  switch (v.kind) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += v.boolean ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber: {
      // Integral values print as integers (ids round-trip cleanly).
      const double d = v.number;
      if (d == std::floor(d) && std::fabs(d) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
        out += buf;
      } else {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", d);
        out += buf;
      }
      return;
    }
    case JsonValue::Kind::kString: {
      out.push_back('"');
      for (const char c : v.string) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
              char buf[8];
              std::snprintf(buf, sizeof buf, "\\u%04x", c);
              out += buf;
            } else {
              out.push_back(c);
            }
        }
      }
      out.push_back('"');
      return;
    }
    case JsonValue::Kind::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i) out += ", ";
        render_to(v.array[i], out);
      }
      out.push_back(']');
      return;
    }
    case JsonValue::Kind::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < v.object.size(); ++i) {
        if (i) out += ", ";
        JsonValue key;
        key.kind = JsonValue::Kind::kString;
        key.string = v.object[i].first;
        render_to(key, out);
        out += ": ";
        render_to(v.object[i].second, out);
      }
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

std::string json_render(const JsonValue& v) {
  std::string out;
  render_to(v, out);
  return out;
}

}  // namespace ctdf::serve
