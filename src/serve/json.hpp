// Minimal JSON for the serve protocol (src/serve/serve.hpp).
//
// The serve front-end needs exactly one JSON dialect: parse a request
// object off one NDJSON line, walk a few fields, and write a response
// line. A dependency-free recursive-descent parser covers that; it is
// not a general-purpose JSON library (no streaming, no number
// round-trip guarantees beyond double precision, objects keep
// insertion order and allow duplicate keys — find() returns the first).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ctdf::serve {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// First member with this key, or nullptr.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing content not). On failure returns nullopt and, when `error`
/// is non-null, a one-line description with the byte offset.
[[nodiscard]] std::optional<JsonValue> json_parse(std::string_view text,
                                                  std::string* error = nullptr);

/// Renders a JSON value on one line (the response writer uses this for
/// echoed ids and store values; container rendering is compact).
[[nodiscard]] std::string json_render(const JsonValue& v);

}  // namespace ctdf::serve
