// `ctdf serve` — the compile-once, serve-many front-end (ROADMAP item
// 1: "what a 'millions of users' ctdf service would look like").
//
// The server accepts newline-delimited JSON request objects on stdin
// (or a Unix stream socket) and emits exactly one single-line JSON
// response per request, in request order. All requests multiplex off
// one shared core::ProgramCache, so a hot program is lowered exactly
// once — every later request pays only execution.
//
// Request object:
//   {"id": <any scalar, echoed back>,          // optional
//    "op": "compile" | "run" | "run-batch" | "shutdown",
//    "source": "<ctdf program text>",          // compile / run
//    "options": ["--mem-elim", "--engine=event", ...],   // optional:
//        the CLI's schema flags (translate::apply_schema_flag) and
//        machine flags (machine::apply_machine_flag), per request
//    "print": ["x", "a"],                      // optional: store
//        variables to return (default: every scalar)
//    "requests": [<request>, ...]}             // run-batch only; inner
//        op defaults to "run", inner options default to the batch's
//
// Response object (one line; key sets frozen by tests/serve_test.cpp):
//   {"id":..., "op":"run", "ok":true,
//    "cache": {"disposition":"hit-memory"|"hit-disk"|"miss",
//              "key":"<16 hex>", "hits":..., "disk_hits":...,
//              "misses":..., "evictions":..., "disk_rejects":...,
//              "entries":..., "blob_bytes":...},
//    "content_hash": "<16 hex>",               // the program's blob hash
//    "stage_nanos": {"parse":..., ..., "total":...},  // compile stages
//        this request actually ran; {"total": 0} on cache hits
//    "exec_nanos":..., "total_nanos":...,      // this request's wall time
//    "stats": {<machine::render_stats_json>} | null,   // run only
//    "store": {"x": 3, "a": [1, 2]} | null,    // run only
//    "error": null | {"kind": "protocol"|"options"|"compile"|"machine",
//                     "message": "..."}}
//
// A "run-batch" response instead carries {"batch": {"requests":N,
// "errors":N, "cache_hits":N}, "results": [<per-request responses>]};
// results keep request order even when executed by several workers.
// "shutdown" acknowledges and stops the serve loop (stdin mode also
// stops at EOF).
//
// Errors never kill the server: every failure — unparseable line,
// unknown op, bad flag, compile error, machine error — produces an
// "ok": false response with a typed error object on its own line.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/progcache.hpp"

namespace ctdf::serve {

struct ServeOptions {
  /// Executor threads for run-batch requests (1 = in-line). Responses
  /// are ordered regardless.
  std::size_t workers = 1;
  /// The shared program cache (capacity / disk dir / disk capacity).
  core::ProgramCache::Config cache;
};

class Server {
 public:
  Server();
  explicit Server(ServeOptions options);

  /// Handles one request line, returning the response line (no trailing
  /// newline). Sets *shutdown when the request asked the serve loop to
  /// stop. Never throws.
  [[nodiscard]] std::string handle_line(const std::string& line,
                                        bool* shutdown = nullptr);

  /// NDJSON loop over a stream pair until EOF or a shutdown request.
  /// Returns a process exit code (0).
  int serve_stream(std::istream& in, std::ostream& out);

  /// Same protocol over a Unix stream socket (one client at a time;
  /// the listener accepts the next connection when a client hangs up).
  /// Returns non-zero if the socket cannot be created/bound.
  int serve_socket(const std::string& path);

  [[nodiscard]] core::ProgramCache& cache() { return cache_; }

 private:
  ServeOptions options_;
  core::ProgramCache cache_;
};

}  // namespace ctdf::serve
