// `ctdf serve` — the compile-once, serve-many front-end (ROADMAP item
// 1: "what a 'millions of users' ctdf service would look like").
//
// The server accepts newline-delimited JSON request objects on stdin
// (or a Unix stream socket) and emits exactly one single-line JSON
// response per request, in request order. All requests multiplex off
// one shared core::ProgramCache, so a hot program is lowered exactly
// once — every later request pays only execution.
//
// Request object:
//   {"id": <any scalar, echoed back>,          // optional
//    "op": "compile" | "run" | "run-batch" | "stats" | "shutdown",
//    "source": "<ctdf program text>",          // compile / run
//    "options": ["--mem-elim", "--engine=event", ...],   // optional:
//        the CLI's schema flags (translate::apply_schema_flag) and
//        machine flags (machine::apply_machine_flag), per request
//    "deadline_ms": 250,                       // optional: wall-clock
//        budget for this request, compile time included; the remainder
//        after compilation becomes the machine deadline (clamped to 0,
//        so an exhausted deadline is a typed machine error, not a hang).
//        Batch items inherit the batch's value unless they override it.
//    "print": ["x", "a"],                      // optional: store
//        variables to return (default: every scalar)
//    "requests": [<request>, ...]}             // run-batch only; inner
//        op defaults to "run", inner options default to the batch's
//
// Response object (one line; key sets frozen by tests/serve_test.cpp):
//   {"id":..., "op":"run", "ok":true,
//    "cache": {"disposition":"hit-memory"|"hit-disk"|"miss",
//              "key":"<16 hex>", "hits":..., "disk_hits":...,
//              "misses":..., "evictions":..., "disk_rejects":...,
//              "entries":..., "blob_bytes":...},
//    "content_hash": "<16 hex>",               // the program's blob hash
//    "stage_nanos": {"parse":..., ..., "total":...},  // compile stages
//        this request actually ran; {"total": 0} on cache hits
//    "exec_nanos":..., "total_nanos":...,      // this request's wall time
//    "stats": {<machine::render_stats_json>} | null,   // run only
//    "store": {"x": 3, "a": [1, 2]} | null,    // run only
//    "error": null | {"kind": "protocol"|"options"|"compile"|"machine",
//                     "message": "..."}}
//
// A "run-batch" response instead carries {"batch": {"requests":N,
// "errors":N, "cache_hits":N}, "results": [<per-request responses>]};
// results keep request order even when executed by several workers.
// A "stats" response carries a "serve" object with the admission /
// overload counters (ServeStats below). "shutdown" acknowledges,
// stops accepting, and drains (stdin mode also drains at EOF).
//
// Overload and drain (the fd-based loops serve_pipe / serve_socket):
// requests flow reader -> bounded queue (max_queue) -> worker pool ->
// ordered writer. When the queue is full the reader answers
// immediately with {"kind": "overloaded", "message": ...,
// "retry_after_ms": N} (id null — correlate by response order; the
// hint scales with observed service time and queue depth). SIGTERM /
// SIGINT / the shutdown op stop the reader; queued requests are still
// executed until drain_ms expires, after which they are answered with
// {"kind": "draining", ...} rejections. Either way every request that
// was read gets exactly one response and the process exits cleanly
// (socket file unlinked). SIGPIPE is ignored: a client that hangs up
// mid-response is counted (client_disconnects) and the server keeps
// accepting.
//
// Errors never kill the server: every failure — unparseable line,
// unknown op, bad flag, compile error, machine error, overload — is
// an "ok": false response with a typed error object on its own line.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "core/progcache.hpp"

namespace ctdf::serve {

struct ServeOptions {
  /// Executor threads: run-batch fan-out, and the pump worker pool in
  /// the fd-based loops (1 = in-line). Responses are ordered
  /// regardless.
  std::size_t workers = 1;
  /// Admission bound: requests beyond this many queued are rejected
  /// with a typed "overloaded" response instead of queueing without
  /// bound.
  std::size_t max_queue = 256;
  /// Drain window after shutdown / SIGTERM / EOF: queued requests
  /// still execute until it closes, then are rejected as "draining".
  /// In-flight requests are always joined.
  std::int64_t drain_ms = 2000;
  /// Requests slower than this (wall clock) bump
  /// ServeStats::slow_requests — the slow-request watchdog counter.
  /// Negative disables.
  std::int64_t slow_ms = 1000;
  /// Deadline applied to requests that do not carry their own
  /// "deadline_ms". Negative = none.
  std::int64_t default_deadline_ms = -1;
  /// The shared program cache (capacity / disk dir / disk capacity).
  core::ProgramCache::Config cache;
};

/// Liveness counters, exposed by the "stats" op. Monotonic except the
/// two gauges (queue_depth, in_flight).
struct ServeStats {
  std::atomic<std::uint64_t> accepted{0};    ///< admitted to a handler
  std::atomic<std::uint64_t> completed{0};   ///< handler responses produced
  std::atomic<std::uint64_t> rejected_overload{0};
  std::atomic<std::uint64_t> rejected_draining{0};
  std::atomic<std::uint64_t> slow_requests{0};
  std::atomic<std::uint64_t> client_disconnects{0};
  std::atomic<std::uint64_t> queue_depth{0};
  std::atomic<std::uint64_t> in_flight{0};
};

/// Per-pump-worker accounting, surfaced by the "stats" op.
struct WorkerGauge {
  std::atomic<std::uint64_t> handled{0};
  std::atomic<std::uint64_t> in_flight{0};
};

class Server {
 public:
  Server();
  explicit Server(ServeOptions options);

  /// Handles one request line, returning the response line (no trailing
  /// newline). Sets *shutdown when the request asked the serve loop to
  /// stop. Never throws. Safe to call from several threads at once.
  [[nodiscard]] std::string handle_line(const std::string& line,
                                        bool* shutdown = nullptr);

  /// NDJSON loop over a stream pair until EOF or a shutdown request:
  /// the synchronous in-process surface (tests, embedding). No
  /// admission control — iostreams cannot poll. Returns a process
  /// exit code (0).
  int serve_stream(std::istream& in, std::ostream& out);

  /// NDJSON loop over raw fds with the full pump: bounded queue,
  /// worker pool, ordered responses, overload rejection, signal-aware
  /// graceful drain. The CLI's stdin mode is serve_pipe(0, 1).
  int serve_pipe(int in_fd, int out_fd);

  /// Same protocol over a Unix stream socket (one client at a time;
  /// the listener accepts the next connection when a client hangs up).
  /// Signal-aware, SIGPIPE-proof. Returns non-zero only if the socket
  /// cannot be created/bound.
  int serve_socket(const std::string& path);

  [[nodiscard]] core::ProgramCache& cache() { return cache_; }
  [[nodiscard]] const ServeStats& stats() const { return stats_; }
  [[nodiscard]] const ServeOptions& options() const { return options_; }

 private:
  friend class Pump;

  ServeOptions options_;
  core::ProgramCache cache_;
  ServeStats stats_;
  /// One slot per pump worker, sized once so the "stats" op can read
  /// them without locking against pool start/stop.
  std::unique_ptr<WorkerGauge[]> gauges_;
  std::size_t num_gauges_ = 0;
};

}  // namespace ctdf::serve
