#include "serve/serve.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "core/compiler.hpp"
#include "machine/flags.hpp"
#include "machine/report.hpp"
#include "serve/json.hpp"
#include "support/diagnostics.hpp"
#include "translate/options.hpp"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace ctdf::serve {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t nanos_since(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0)
      .count();
}

/// Multi-line JSON (render_stats_json, render_cache_json) folded onto
/// one NDJSON line. Newlines in JSON exist only as inter-token
/// whitespace, so dropping them preserves the document.
std::string compact(std::string s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\n') {
      out.push_back(s[i]);
      continue;
    }
    // Swallow the following indentation too; keep one space so tokens
    // stay separated ("key": value pairs already carry their spaces).
    while (i + 1 < s.size() && s[i + 1] == ' ') ++i;
  }
  return out;
}

std::string quoted(const std::string& s) {
  return "\"" + machine::json_escape(s) + "\"";
}

std::string hex16(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// One request, decoded as far as flag parsing can take it.
struct Request {
  std::string id_json = "null";  ///< echoed verbatim
  std::string op;
  std::string source;
  translate::TranslateOptions topt;
  machine::MachineOptions mopt;
  std::vector<std::string> print;
  bool has_print = false;
  const JsonValue* batch = nullptr;  ///< run-batch's "requests" array

  // Decode failure, if any.
  std::string error_kind;
  std::string error_message;
  [[nodiscard]] bool ok() const { return error_kind.empty(); }
  void fail(std::string kind, std::string message) {
    if (error_kind.empty()) {
      error_kind = std::move(kind);
      error_message = std::move(message);
    }
  }
};

/// The request-independent option baseline: the CLI's translate default
/// (schema2+opt) and the CLI's machine defaults.
struct Defaults {
  translate::TranslateOptions topt =
      translate::TranslateOptions::schema2_optimized();
  machine::MachineOptions mopt = machine::default_cli_machine_options();
};

Request decode_request(const JsonValue& obj, const Defaults& defaults) {
  Request req;
  req.topt = defaults.topt;
  req.mopt = defaults.mopt;
  if (!obj.is_object()) {
    req.fail("protocol", "request must be a JSON object");
    return req;
  }
  if (const JsonValue* id = obj.find("id")) {
    if (id->is_array() || id->is_object()) {
      req.fail("protocol", "\"id\" must be a scalar");
      return req;
    }
    req.id_json = json_render(*id);
  }
  const JsonValue* op = obj.find("op");
  if (!op || !op->is_string()) {
    req.fail("protocol", "missing \"op\" string");
    return req;
  }
  req.op = op->string;
  if (const JsonValue* src = obj.find("source")) {
    if (!src->is_string()) {
      req.fail("protocol", "\"source\" must be a string");
      return req;
    }
    req.source = src->string;
  }
  if (const JsonValue* opts = obj.find("options")) {
    if (!opts->is_array()) {
      req.fail("protocol", "\"options\" must be an array of strings");
      return req;
    }
    for (const JsonValue& o : opts->array) {
      if (!o.is_string()) {
        req.fail("protocol", "\"options\" must be an array of strings");
        return req;
      }
      const std::string& flag = o.string;
      switch (translate::apply_schema_flag(req.topt, flag)) {
        case translate::SchemaFlagParse::kApplied:
          continue;
        case translate::SchemaFlagParse::kBadValue:
          req.fail("options", "bad value: " + flag);
          return req;
        case translate::SchemaFlagParse::kNotSchemaFlag:
          break;
      }
      std::string detail;
      switch (machine::apply_machine_flag(req.mopt, flag, &detail)) {
        case machine::MachineFlagParse::kApplied:
          continue;
        case machine::MachineFlagParse::kBadValue:
          req.fail("options", "bad value: " + flag +
                                  (detail.empty() ? "" : " (" + detail + ")"));
          return req;
        case machine::MachineFlagParse::kNotMachineFlag:
          req.fail("options", "unknown option: " + flag);
          return req;
      }
    }
  }
  if (const JsonValue* print = obj.find("print")) {
    if (!print->is_array()) {
      req.fail("protocol", "\"print\" must be an array of strings");
      return req;
    }
    req.has_print = true;
    for (const JsonValue& p : print->array) {
      if (!p.is_string()) {
        req.fail("protocol", "\"print\" must be an array of strings");
        return req;
      }
      req.print.push_back(p.string);
    }
  }
  req.batch = obj.find("requests");
  return req;
}

/// {"kind": "...", "message": "..."} error responses keep the short
/// key set {id, op, ok, error}; tests/serve_test.cpp freezes it.
std::string error_response(const Request& req) {
  std::ostringstream os;
  os << "{\"id\": " << req.id_json << ", \"op\": " << quoted(req.op)
     << ", \"ok\": false, \"error\": {\"kind\": " << quoted(req.error_kind)
     << ", \"message\": " << quoted(req.error_message) << "}}";
  return os.str();
}

std::string stage_nanos_json(const translate::PipelineTrace& trace) {
  std::ostringstream os;
  os << '{';
  for (const auto& r : trace.stages) {
    if (!r.ran) continue;
    os << '"' << translate::to_string(r.stage) << "\": " << r.nanos << ", ";
  }
  os << "\"total\": " << trace.total_nanos() << '}';
  return os.str();
}

/// The final store as {"name": value, "name": [v, ...]}. Default: every
/// scalar (the CLI's print_store convention); an explicit print list
/// selects names, unknown names render as null.
std::string store_json(const machine::ProgramImage& image,
                       const lang::Store& store, const Request& req) {
  const auto cell_value = [&](std::uint64_t idx) -> std::int64_t {
    return idx < store.cells.size() ? store.cells[idx] : 0;
  };
  std::ostringstream os;
  os << '{';
  bool first = true;
  const auto emit = [&](const machine::NamedCell& c) {
    if (!first) os << ", ";
    first = false;
    os << quoted(c.name) << ": ";
    if (c.extent == 0) {
      os << cell_value(c.base);
      return;
    }
    os << '[';
    for (std::int64_t i = 0; i < c.extent; ++i)
      os << (i ? ", " : "") << cell_value(c.base + static_cast<std::uint64_t>(i));
    os << ']';
  };
  if (req.has_print) {
    for (const std::string& name : req.print) {
      const machine::NamedCell* found = nullptr;
      for (const auto& c : image.names)
        if (c.name == name) {
          found = &c;
          break;
        }
      if (found) {
        emit(*found);
      } else {
        if (!first) os << ", ";
        first = false;
        os << quoted(name) << ": null";
      }
    }
  } else {
    for (const auto& c : image.names)
      if (c.extent == 0) emit(c);
  }
  os << '}';
  return os.str();
}

}  // namespace

Server::Server() : Server(ServeOptions{}) {}

Server::Server(ServeOptions options)
    : options_(options), cache_(options.cache) {}

namespace {

/// compile / run, shared by top-level requests and batch items.
std::string handle_program_request(core::ProgramCache& cache,
                                   const Request& req) {
  const auto t0 = Clock::now();
  if (req.source.empty())
    return error_response([&] {
      Request r = req;
      r.fail("protocol", "missing \"source\" for op " + req.op);
      return r;
    }());

  core::ProgramCache::Outcome out;
  try {
    out = cache.get(req.source, core::PipelineOptions(req.topt));
  } catch (const std::exception& e) {
    Request r = req;
    r.fail("compile", e.what());
    return error_response(r);
  }

  std::string stats_json = "null";
  std::string store = "null";
  std::string machine_error;
  std::int64_t exec_nanos = 0;
  if (req.op == "run") {
    const auto e0 = Clock::now();
    const machine::RunResult res = core::execute(out.entry->image, req.mopt);
    exec_nanos = nanos_since(e0);
    stats_json = compact(machine::render_stats_json(res.stats, req.mopt));
    if (res.stats.completed)
      store = store_json(out.entry->image, res.store, req);
    else
      machine_error = res.stats.error;
  }

  const core::CacheStats cstats = cache.stats();
  std::ostringstream os;
  os << "{\"id\": " << req.id_json << ", \"op\": " << quoted(req.op)
     << ", \"ok\": " << (machine_error.empty() ? "true" : "false")
     << ", \"cache\": "
     << compact(core::render_cache_json(cstats, out.disposition,
                                        out.entry->key))
     << ", \"content_hash\": " << quoted(hex16(out.entry->content_hash))
     << ", \"stage_nanos\": " << stage_nanos_json(out.trace)
     << ", \"exec_nanos\": " << exec_nanos
     << ", \"total_nanos\": " << nanos_since(t0)
     << ", \"stats\": " << stats_json << ", \"store\": " << store
     << ", \"error\": ";
  if (machine_error.empty())
    os << "null";
  else
    os << "{\"kind\": \"machine\", \"message\": " << quoted(machine_error)
       << "}";
  os << '}';
  return os.str();
}

}  // namespace

std::string Server::handle_line(const std::string& line, bool* shutdown) {
  if (shutdown) *shutdown = false;
  std::string parse_error;
  const auto doc = json_parse(line, &parse_error);
  if (!doc) {
    Request r;
    r.fail("protocol", "bad JSON: " + parse_error);
    return error_response(r);
  }
  const Defaults defaults;
  Request req = decode_request(*doc, defaults);
  if (!req.ok()) return error_response(req);

  if (req.op == "shutdown") {
    if (shutdown) *shutdown = true;
    return "{\"id\": " + req.id_json +
           ", \"op\": \"shutdown\", \"ok\": true, \"error\": null}";
  }
  if (req.op == "compile" || req.op == "run")
    return handle_program_request(cache_, req);
  if (req.op != "run-batch") {
    req.fail("protocol", "unknown op: " + req.op);
    return error_response(req);
  }

  if (!req.batch || !req.batch->is_array()) {
    req.fail("protocol", "run-batch needs a \"requests\" array");
    return error_response(req);
  }
  // The batch's own topt/mopt become each item's baseline, so shared
  // options can be stated once at the batch level.
  Defaults batch_defaults;
  batch_defaults.topt = req.topt;
  batch_defaults.mopt = req.mopt;
  const std::vector<JsonValue>& items = req.batch->array;
  std::vector<Request> decoded;
  decoded.reserve(items.size());
  for (const JsonValue& item : items) {
    Request r = decode_request(item, batch_defaults);
    if (r.ok()) {
      if (r.op.empty()) r.op = "run";
      if (r.op == "run-batch") r.fail("protocol", "run-batch cannot nest");
    } else if (r.error_message == "missing \"op\" string") {
      // Re-decode with the default op: "op" is optional inside a batch.
      JsonValue patched = item;
      JsonValue opval;
      opval.kind = JsonValue::Kind::kString;
      opval.string = "run";
      patched.object.emplace_back("op", opval);
      r = decode_request(patched, batch_defaults);
    }
    decoded.push_back(std::move(r));
  }

  std::vector<std::string> results(decoded.size());
  std::atomic<std::size_t> errors{0};
  std::atomic<std::size_t> batch_cache_hits{0};
  const core::CacheStats before = cache_.stats();
  std::atomic<std::size_t> next{0};
  const auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= decoded.size()) return;
      const Request& r = decoded[i];
      if (!r.ok()) {
        results[i] = error_response(r);
        ++errors;
        continue;
      }
      results[i] = handle_program_request(cache_, r);
      if (results[i].find("\"ok\": false") != std::string::npos) ++errors;
    }
  };
  const std::size_t workers =
      std::min(options_.workers == 0 ? std::size_t{1} : options_.workers,
               decoded.size());
  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
    for (std::thread& t : pool) t.join();
  }
  const core::CacheStats after = cache_.stats();
  batch_cache_hits = (after.hits - before.hits) +
                     (after.disk_hits - before.disk_hits);

  std::ostringstream os;
  os << "{\"id\": " << req.id_json << ", \"op\": \"run-batch\", \"ok\": true"
     << ", \"batch\": {\"requests\": " << decoded.size()
     << ", \"errors\": " << errors.load()
     << ", \"cache_hits\": " << batch_cache_hits.load() << "}"
     << ", \"results\": [";
  for (std::size_t i = 0; i < results.size(); ++i)
    os << (i ? ", " : "") << results[i];
  os << "], \"error\": null}";
  return os.str();
}

int Server::serve_stream(std::istream& in, std::ostream& out) {
  std::string line;
  bool shutdown = false;
  while (!shutdown && std::getline(in, line)) {
    if (line.empty()) continue;
    out << handle_line(line, &shutdown) << '\n';
    out.flush();
  }
  return 0;
}

int Server::serve_socket(const std::string& path) {
#ifdef _WIN32
  std::fprintf(stderr, "serve: --socket is not supported on this platform\n");
  return 2;
#else
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "serve: socket path too long: %s\n", path.c_str());
    return 2;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("serve: socket");
    return 2;
  }
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 8) < 0) {
    std::perror("serve: bind/listen");
    ::close(fd);
    return 2;
  }
  bool shutdown = false;
  while (!shutdown) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) break;
    std::string buffer;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::read(client, chunk, sizeof chunk);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t eol;
      while ((eol = buffer.find('\n')) != std::string::npos) {
        const std::string line = buffer.substr(0, eol);
        buffer.erase(0, eol + 1);
        if (line.empty()) continue;
        const std::string response = handle_line(line, &shutdown) + "\n";
        std::size_t off = 0;
        while (off < response.size()) {
          const ssize_t w =
              ::write(client, response.data() + off, response.size() - off);
          if (w <= 0) break;
          off += static_cast<std::size_t>(w);
        }
        if (shutdown) break;
      }
      if (shutdown) break;
    }
    ::close(client);
  }
  ::close(fd);
  ::unlink(path.c_str());
  return 0;
#endif
}

}  // namespace ctdf::serve
