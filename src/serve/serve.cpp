#include "serve/serve.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <deque>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "core/compiler.hpp"
#include "machine/flags.hpp"
#include "machine/report.hpp"
#include "serve/json.hpp"
#include "support/diagnostics.hpp"
#include "translate/options.hpp"

#ifndef _WIN32
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace ctdf::serve {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t nanos_since(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0)
      .count();
}

/// Multi-line JSON (render_stats_json, render_cache_json) folded onto
/// one NDJSON line. Newlines in JSON exist only as inter-token
/// whitespace, so dropping them preserves the document.
std::string compact(std::string s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\n') {
      out.push_back(s[i]);
      continue;
    }
    // Swallow the following indentation too; keep one space so tokens
    // stay separated ("key": value pairs already carry their spaces).
    while (i + 1 < s.size() && s[i + 1] == ' ') ++i;
  }
  return out;
}

std::string quoted(const std::string& s) {
  return "\"" + machine::json_escape(s) + "\"";
}

std::string hex16(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// One request, decoded as far as flag parsing can take it.
struct Request {
  std::string id_json = "null";  ///< echoed verbatim
  std::string op;
  std::string source;
  translate::TranslateOptions topt;
  machine::MachineOptions mopt;
  std::int64_t deadline_ms = -1;  ///< request wall budget, compile included
  std::vector<std::string> print;
  bool has_print = false;
  const JsonValue* batch = nullptr;  ///< run-batch's "requests" array

  // Decode failure, if any.
  std::string error_kind;
  std::string error_message;
  [[nodiscard]] bool ok() const { return error_kind.empty(); }
  void fail(std::string kind, std::string message) {
    if (error_kind.empty()) {
      error_kind = std::move(kind);
      error_message = std::move(message);
    }
  }
};

/// The request-independent option baseline: the CLI's translate default
/// (schema2+opt) and the CLI's machine defaults.
struct Defaults {
  translate::TranslateOptions topt =
      translate::TranslateOptions::schema2_optimized();
  machine::MachineOptions mopt = machine::default_cli_machine_options();
  std::int64_t deadline_ms = -1;
};

Request decode_request(const JsonValue& obj, const Defaults& defaults) {
  Request req;
  req.topt = defaults.topt;
  req.mopt = defaults.mopt;
  req.deadline_ms = defaults.deadline_ms;
  if (!obj.is_object()) {
    req.fail("protocol", "request must be a JSON object");
    return req;
  }
  if (const JsonValue* id = obj.find("id")) {
    if (id->is_array() || id->is_object()) {
      req.fail("protocol", "\"id\" must be a scalar");
      return req;
    }
    req.id_json = json_render(*id);
  }
  const JsonValue* op = obj.find("op");
  if (!op || !op->is_string()) {
    req.fail("protocol", "missing \"op\" string");
    return req;
  }
  req.op = op->string;
  if (const JsonValue* src = obj.find("source")) {
    if (!src->is_string()) {
      req.fail("protocol", "\"source\" must be a string");
      return req;
    }
    req.source = src->string;
  }
  if (const JsonValue* opts = obj.find("options")) {
    if (!opts->is_array()) {
      req.fail("protocol", "\"options\" must be an array of strings");
      return req;
    }
    for (const JsonValue& o : opts->array) {
      if (!o.is_string()) {
        req.fail("protocol", "\"options\" must be an array of strings");
        return req;
      }
      const std::string& flag = o.string;
      switch (translate::apply_schema_flag(req.topt, flag)) {
        case translate::SchemaFlagParse::kApplied:
          continue;
        case translate::SchemaFlagParse::kBadValue:
          req.fail("options", "bad value: " + flag);
          return req;
        case translate::SchemaFlagParse::kNotSchemaFlag:
          break;
      }
      std::string detail;
      switch (machine::apply_machine_flag(req.mopt, flag, &detail)) {
        case machine::MachineFlagParse::kApplied:
          continue;
        case machine::MachineFlagParse::kBadValue:
          req.fail("options", "bad value: " + flag +
                                  (detail.empty() ? "" : " (" + detail + ")"));
          return req;
        case machine::MachineFlagParse::kNotMachineFlag:
          req.fail("options", "unknown option: " + flag);
          return req;
      }
    }
  }
  if (const JsonValue* dl = obj.find("deadline_ms")) {
    const double v = dl->number;
    if (dl->kind != JsonValue::Kind::kNumber || v < 0 || v > 1e12 ||
        v != static_cast<double>(static_cast<std::int64_t>(v))) {
      req.fail("protocol", "\"deadline_ms\" must be a non-negative integer");
      return req;
    }
    req.deadline_ms = static_cast<std::int64_t>(v);
  }
  if (const JsonValue* print = obj.find("print")) {
    if (!print->is_array()) {
      req.fail("protocol", "\"print\" must be an array of strings");
      return req;
    }
    req.has_print = true;
    for (const JsonValue& p : print->array) {
      if (!p.is_string()) {
        req.fail("protocol", "\"print\" must be an array of strings");
        return req;
      }
      req.print.push_back(p.string);
    }
  }
  req.batch = obj.find("requests");
  return req;
}

/// {"kind": "...", "message": "..."} error responses keep the short
/// key set {id, op, ok, error}; tests/serve_test.cpp freezes it.
std::string error_response(const Request& req) {
  std::ostringstream os;
  os << "{\"id\": " << req.id_json << ", \"op\": " << quoted(req.op)
     << ", \"ok\": false, \"error\": {\"kind\": " << quoted(req.error_kind)
     << ", \"message\": " << quoted(req.error_message) << "}}";
  return os.str();
}

std::string stage_nanos_json(const translate::PipelineTrace& trace) {
  std::ostringstream os;
  os << '{';
  for (const auto& r : trace.stages) {
    if (!r.ran) continue;
    os << '"' << translate::to_string(r.stage) << "\": " << r.nanos << ", ";
  }
  os << "\"total\": " << trace.total_nanos() << '}';
  return os.str();
}

/// The final store as {"name": value, "name": [v, ...]}. Default: every
/// scalar (the CLI's print_store convention); an explicit print list
/// selects names, unknown names render as null.
std::string store_json(const machine::ProgramImage& image,
                       const lang::Store& store, const Request& req) {
  const auto cell_value = [&](std::uint64_t idx) -> std::int64_t {
    return idx < store.cells.size() ? store.cells[idx] : 0;
  };
  std::ostringstream os;
  os << '{';
  bool first = true;
  const auto emit = [&](const machine::NamedCell& c) {
    if (!first) os << ", ";
    first = false;
    os << quoted(c.name) << ": ";
    if (c.extent == 0) {
      os << cell_value(c.base);
      return;
    }
    os << '[';
    for (std::int64_t i = 0; i < c.extent; ++i)
      os << (i ? ", " : "") << cell_value(c.base + static_cast<std::uint64_t>(i));
    os << ']';
  };
  if (req.has_print) {
    for (const std::string& name : req.print) {
      const machine::NamedCell* found = nullptr;
      for (const auto& c : image.names)
        if (c.name == name) {
          found = &c;
          break;
        }
      if (found) {
        emit(*found);
      } else {
        if (!first) os << ", ";
        first = false;
        os << quoted(name) << ": null";
      }
    }
  } else {
    for (const auto& c : image.names)
      if (c.extent == 0) emit(c);
  }
  os << '}';
  return os.str();
}

/// compile / run, shared by top-level requests and batch items.
std::string handle_program_request(core::ProgramCache& cache,
                                   const Request& req, ServeStats& stats,
                                   const ServeOptions& opts) {
  const auto t0 = Clock::now();
  if (req.source.empty())
    return error_response([&] {
      Request r = req;
      r.fail("protocol", "missing \"source\" for op " + req.op);
      return r;
    }());

  core::ProgramCache::Outcome out;
  try {
    out = cache.get(req.source, core::PipelineOptions(req.topt));
  } catch (const std::exception& e) {
    Request r = req;
    r.fail("compile", e.what());
    return error_response(r);
  }

  std::string stats_json = "null";
  std::string store = "null";
  std::string machine_error;
  std::int64_t exec_nanos = 0;
  machine::MachineOptions mopt = req.mopt;
  if (req.op == "run") {
    // The request deadline covers compile time too: whatever the
    // pipeline spent comes off the machine budget, clamped to zero so
    // an exhausted deadline still produces the typed machine error
    // (the engine rejects a 0 ms deadline up front). An explicit
    // --deadline-ms option keeps whichever bound is tighter.
    if (req.deadline_ms >= 0) {
      const std::int64_t left = std::max<std::int64_t>(
          0, req.deadline_ms - nanos_since(t0) / 1'000'000);
      mopt.budget.deadline_ms = mopt.budget.deadline_ms >= 0
                                    ? std::min(mopt.budget.deadline_ms, left)
                                    : left;
    }
    const auto e0 = Clock::now();
    const machine::RunResult res = core::execute(out.entry->image, mopt);
    exec_nanos = nanos_since(e0);
    stats_json = compact(machine::render_stats_json(res.stats, mopt));
    if (res.stats.completed)
      store = store_json(out.entry->image, res.store, req);
    else
      machine_error = res.stats.error;
  }

  const std::int64_t total_nanos = nanos_since(t0);
  if (opts.slow_ms >= 0 && total_nanos > opts.slow_ms * 1'000'000)
    stats.slow_requests.fetch_add(1, std::memory_order_relaxed);

  const core::CacheStats cstats = cache.stats();
  std::ostringstream os;
  os << "{\"id\": " << req.id_json << ", \"op\": " << quoted(req.op)
     << ", \"ok\": " << (machine_error.empty() ? "true" : "false")
     << ", \"cache\": "
     << compact(core::render_cache_json(cstats, out.disposition,
                                        out.entry->key))
     << ", \"content_hash\": " << quoted(hex16(out.entry->content_hash))
     << ", \"stage_nanos\": " << stage_nanos_json(out.trace)
     << ", \"exec_nanos\": " << exec_nanos
     << ", \"total_nanos\": " << total_nanos
     << ", \"stats\": " << stats_json << ", \"store\": " << store
     << ", \"error\": ";
  if (machine_error.empty())
    os << "null";
  else
    os << "{\"kind\": \"machine\", \"message\": " << quoted(machine_error)
       << "}";
  os << '}';
  return os.str();
}

/// The "stats" op: a liveness probe that never touches the cache or
/// the machine. Key set frozen by tests/serve_test.cpp.
std::string stats_response(const Request& req, const ServeStats& s,
                           const WorkerGauge* gauges, std::size_t num_gauges,
                           const ServeOptions& opts) {
  std::ostringstream os;
  os << "{\"id\": " << req.id_json
     << ", \"op\": \"stats\", \"ok\": true, \"serve\": {"
     << "\"workers\": " << std::max<std::size_t>(1, opts.workers)
     << ", \"max_queue\": " << opts.max_queue
     << ", \"accepted\": " << s.accepted.load()
     << ", \"completed\": " << s.completed.load()
     << ", \"rejected_overload\": " << s.rejected_overload.load()
     << ", \"rejected_draining\": " << s.rejected_draining.load()
     << ", \"slow_requests\": " << s.slow_requests.load()
     << ", \"client_disconnects\": " << s.client_disconnects.load()
     << ", \"queue_depth\": " << s.queue_depth.load()
     << ", \"in_flight\": " << s.in_flight.load() << ", \"per_worker\": [";
  for (std::size_t i = 0; i < num_gauges; ++i)
    os << (i ? ", " : "") << "{\"handled\": " << gauges[i].handled.load()
       << ", \"busy\": " << (gauges[i].in_flight.load() ? "true" : "false")
       << "}";
  os << "]}, \"error\": null}";
  return os.str();
}

}  // namespace

Server::Server() : Server(ServeOptions{}) {}

Server::Server(ServeOptions options)
    : options_(options),
      cache_(options.cache),
      gauges_(std::make_unique<WorkerGauge[]>(
          std::max<std::size_t>(1, options.workers))),
      num_gauges_(std::max<std::size_t>(1, options.workers)) {}

std::string Server::handle_line(const std::string& line, bool* shutdown) {
  if (shutdown) *shutdown = false;
  stats_.accepted.fetch_add(1, std::memory_order_relaxed);
  const auto finish = [&](std::string response) {
    stats_.completed.fetch_add(1, std::memory_order_relaxed);
    return response;
  };
  std::string parse_error;
  const auto doc = json_parse(line, &parse_error);
  if (!doc) {
    Request r;
    r.fail("protocol", "bad JSON: " + parse_error);
    return finish(error_response(r));
  }
  Defaults defaults;
  defaults.deadline_ms = options_.default_deadline_ms;
  Request req = decode_request(*doc, defaults);
  if (!req.ok()) return finish(error_response(req));

  if (req.op == "shutdown") {
    if (shutdown) *shutdown = true;
    return finish("{\"id\": " + req.id_json +
                  ", \"op\": \"shutdown\", \"ok\": true, \"error\": null}");
  }
  if (req.op == "stats")
    return finish(
        stats_response(req, stats_, gauges_.get(), num_gauges_, options_));
  if (req.op == "compile" || req.op == "run")
    return finish(handle_program_request(cache_, req, stats_, options_));
  if (req.op != "run-batch") {
    req.fail("protocol", "unknown op: " + req.op);
    return finish(error_response(req));
  }

  if (!req.batch || !req.batch->is_array()) {
    req.fail("protocol", "run-batch needs a \"requests\" array");
    return finish(error_response(req));
  }
  // The batch's own topt/mopt become each item's baseline, so shared
  // options (and the batch deadline) can be stated once at the batch
  // level.
  Defaults batch_defaults;
  batch_defaults.topt = req.topt;
  batch_defaults.mopt = req.mopt;
  batch_defaults.deadline_ms = req.deadline_ms;
  const std::vector<JsonValue>& items = req.batch->array;
  std::vector<Request> decoded;
  decoded.reserve(items.size());
  for (const JsonValue& item : items) {
    Request r = decode_request(item, batch_defaults);
    if (r.ok()) {
      if (r.op.empty()) r.op = "run";
      if (r.op == "run-batch") r.fail("protocol", "run-batch cannot nest");
    } else if (r.error_message == "missing \"op\" string") {
      // Re-decode with the default op: "op" is optional inside a batch.
      JsonValue patched = item;
      JsonValue opval;
      opval.kind = JsonValue::Kind::kString;
      opval.string = "run";
      patched.object.emplace_back("op", opval);
      r = decode_request(patched, batch_defaults);
    }
    decoded.push_back(std::move(r));
  }

  std::vector<std::string> results(decoded.size());
  std::atomic<std::size_t> errors{0};
  std::atomic<std::size_t> batch_cache_hits{0};
  const core::CacheStats before = cache_.stats();
  std::atomic<std::size_t> next{0};
  const auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= decoded.size()) return;
      const Request& r = decoded[i];
      if (!r.ok()) {
        results[i] = error_response(r);
        ++errors;
        continue;
      }
      results[i] = handle_program_request(cache_, r, stats_, options_);
      if (results[i].find("\"ok\": false") != std::string::npos) ++errors;
    }
  };
  const std::size_t workers =
      std::min(options_.workers == 0 ? std::size_t{1} : options_.workers,
               decoded.size());
  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(work);
    for (std::thread& t : pool) t.join();
  }
  const core::CacheStats after = cache_.stats();
  batch_cache_hits = (after.hits - before.hits) +
                     (after.disk_hits - before.disk_hits);

  std::ostringstream os;
  os << "{\"id\": " << req.id_json << ", \"op\": \"run-batch\", \"ok\": true"
     << ", \"batch\": {\"requests\": " << decoded.size()
     << ", \"errors\": " << errors.load()
     << ", \"cache_hits\": " << batch_cache_hits.load() << "}"
     << ", \"results\": [";
  for (std::size_t i = 0; i < results.size(); ++i)
    os << (i ? ", " : "") << results[i];
  os << "], \"error\": null}";
  return finish(os.str());
}

int Server::serve_stream(std::istream& in, std::ostream& out) {
  std::string line;
  bool shutdown = false;
  while (!shutdown && std::getline(in, line)) {
    if (line.empty()) continue;
    out << handle_line(line, &shutdown) << '\n';
    out.flush();
  }
  return 0;
}

#ifndef _WIN32

namespace {

/// Set by SIGTERM / SIGINT. Installed without SA_RESTART so blocking
/// poll/read/accept return EINTR and the serve loops notice promptly.
volatile std::sig_atomic_t g_stop = 0;

extern "C" void serve_stop_handler(int) { g_stop = 1; }

void install_signal_handlers() {
  struct sigaction sa {};
  sa.sa_handler = serve_stop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  // A client hanging up mid-response must be a write error we can
  // count, not a process-killing signal.
  ::signal(SIGPIPE, SIG_IGN);
}

/// Writes the whole buffer; false on EPIPE/ECONNRESET/any write error
/// (the client is gone).
bool write_all(int fd, const std::string& s) {
  std::size_t off = 0;
  while (off < s.size()) {
    const ssize_t w = ::write(fd, s.data() + off, s.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (w == 0) return false;
    off += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

/// The overload-safe request pump behind serve_pipe and serve_socket:
/// reader -> bounded queue -> worker pool -> ordered writer.
///
///  * Admission: the reader never blocks on a full queue; it answers
///    "overloaded" immediately (id null — clients correlate by
///    response order) with a retry_after_ms hint scaled by observed
///    service time and queue depth.
///  * Ordering: every read line gets a sequence number; workers
///    deliver into a reorder buffer, so responses leave in request
///    order even with a parallel pool.
///  * Drain: begin_drain() (shutdown op, signal, or EOF) opens a
///    drain_ms window. Queued requests still execute inside it; after
///    it closes they are answered with "draining" rejections. Either
///    way every queued request is answered and join() returns.
///  * Dead clients: a failed write flips client_gone; later responses
///    are discarded (the reorder cursor still advances) and the
///    disconnect is counted once.
class Pump {
 public:
  Pump(Server& server, int out_fd)
      : server_(server),
        opts_(server.options_),
        stats_(server.stats_),
        gauges_(server.gauges_.get()),
        out_fd_(out_fd),
        num_workers_(std::max<std::size_t>(1, server.options_.workers)) {
    workers_.reserve(num_workers_);
    for (std::size_t w = 0; w < num_workers_; ++w)
      workers_.emplace_back([this, w] { worker_main(w); });
  }

  ~Pump() { join(); }

  /// Reader side: admit or reject one request line.
  void submit(std::string line) {
    const std::uint64_t seq = next_seq_++;
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (queue_.size() >= opts_.max_queue) {
        const std::size_t depth = queue_.size();
        lk.unlock();
        stats_.rejected_overload.fetch_add(1, std::memory_order_relaxed);
        deliver(seq, overloaded_response(depth));
        return;
      }
      queue_.push_back(Item{seq, std::move(line)});
      stats_.queue_depth.store(queue_.size(), std::memory_order_relaxed);
    }
    cv_.notify_one();
  }

  /// Stops accepting and opens the drain window (idempotent; first
  /// caller pins the deadline).
  void begin_drain() {
    bool expected = false;
    if (draining_.compare_exchange_strong(expected, true)) {
      drain_deadline_ns_.store(
          (Clock::now() + std::chrono::milliseconds(opts_.drain_ms))
              .time_since_epoch()
              .count(),
          std::memory_order_relaxed);
    }
    cv_.notify_all();
  }

  /// Reader side: no more submit() calls will come.
  void finish_input() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      input_done_ = true;
    }
    cv_.notify_all();
  }

  /// Waits until every queued request has been answered (executed or
  /// drain-rejected) and the workers exited.
  void join() {
    for (std::thread& t : workers_)
      if (t.joinable()) t.join();
  }

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool client_gone() const {
    std::lock_guard<std::mutex> lk(wmu_);
    return client_gone_;
  }

 private:
  struct Item {
    std::uint64_t seq;
    std::string line;
  };

  void worker_main(std::size_t w) {
    for (;;) {
      Item item;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] { return !queue_.empty() || input_done_; });
        if (queue_.empty()) return;  // input done, everything answered
        item = std::move(queue_.front());
        queue_.pop_front();
        stats_.queue_depth.store(queue_.size(), std::memory_order_relaxed);
      }
      gauges_[w].in_flight.store(1, std::memory_order_relaxed);
      stats_.in_flight.fetch_add(1, std::memory_order_relaxed);

      std::string response;
      bool shutdown = false;
      const bool window_closed =
          draining() && Clock::now().time_since_epoch().count() >=
                            drain_deadline_ns_.load(std::memory_order_relaxed);
      if (window_closed) {
        stats_.rejected_draining.fetch_add(1, std::memory_order_relaxed);
        response = draining_response(item.line);
      } else {
        const auto t0 = Clock::now();
        response = server_.handle_line(item.line, &shutdown);
        // EWMA of service time feeds the overload retry hint; the
        // racy read-modify-write is fine, it is only a hint.
        const std::int64_t us = nanos_since(t0) / 1000;
        const std::int64_t prev = ewma_us_.load(std::memory_order_relaxed);
        ewma_us_.store(prev == 0 ? us : (prev * 4 + us) / 5,
                       std::memory_order_relaxed);
      }
      deliver(item.seq, response);

      gauges_[w].handled.fetch_add(1, std::memory_order_relaxed);
      gauges_[w].in_flight.store(0, std::memory_order_relaxed);
      stats_.in_flight.fetch_sub(1, std::memory_order_relaxed);
      if (shutdown) {
        shutdown_.store(true, std::memory_order_relaxed);
        begin_drain();
      }
    }
  }

  /// Reorder buffer: responses leave in sequence order regardless of
  /// which worker finished first. Once the client is gone, responses
  /// are discarded but the cursor still advances.
  void deliver(std::uint64_t seq, std::string line) {
    std::lock_guard<std::mutex> lk(wmu_);
    pending_.emplace(seq, std::move(line));
    for (auto it = pending_.find(next_write_);
         it != pending_.end();
         it = pending_.find(next_write_)) {
      if (!client_gone_ && !write_all(out_fd_, it->second + "\n")) {
        client_gone_ = true;
        stats_.client_disconnects.fetch_add(1, std::memory_order_relaxed);
      }
      pending_.erase(it);
      ++next_write_;
    }
  }

  [[nodiscard]] std::string overloaded_response(std::size_t depth) const {
    const std::int64_t svc_ms = std::max<std::int64_t>(
        1, ewma_us_.load(std::memory_order_relaxed) / 1000);
    const std::int64_t retry = std::clamp<std::int64_t>(
        svc_ms * (static_cast<std::int64_t>(depth / num_workers_) + 1), 1,
        60'000);
    return "{\"id\": null, \"op\": \"\", \"ok\": false, \"error\": "
           "{\"kind\": \"overloaded\", \"message\": \"server overloaded: " +
           std::to_string(depth) + " request(s) queued (max-queue " +
           std::to_string(opts_.max_queue) +
           ")\", \"retry_after_ms\": " + std::to_string(retry) + "}}";
  }

  /// Drain rejections arrive rarely enough to afford re-parsing the
  /// line for its id, so clients can correlate directly.
  [[nodiscard]] static std::string draining_response(const std::string& line) {
    std::string id = "null";
    std::string op;
    if (const auto doc = json_parse(line); doc && doc->is_object()) {
      if (const JsonValue* idv = doc->find("id"))
        if (!idv->is_array() && !idv->is_object()) id = json_render(*idv);
      if (const JsonValue* opv = doc->find("op"))
        if (opv->is_string()) op = opv->string;
    }
    return "{\"id\": " + id + ", \"op\": " + quoted(op) +
           ", \"ok\": false, \"error\": {\"kind\": \"draining\", "
           "\"message\": \"server draining: request was not started before "
           "the drain window closed\"}}";
  }

  Server& server_;
  const ServeOptions& opts_;
  ServeStats& stats_;
  WorkerGauge* gauges_;
  const int out_fd_;
  const std::size_t num_workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool input_done_ = false;

  mutable std::mutex wmu_;
  std::map<std::uint64_t, std::string> pending_;
  std::uint64_t next_write_ = 0;
  bool client_gone_ = false;

  std::uint64_t next_seq_ = 0;  ///< reader thread only
  std::atomic<bool> draining_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<std::int64_t> drain_deadline_ns_{0};
  std::atomic<std::int64_t> ewma_us_{0};
  std::vector<std::thread> workers_;
};

namespace {

/// Reads NDJSON lines from fd into the pump until EOF, a read error,
/// a stop signal, or the pump starts draining. Returns false when the
/// fd died mid-stream (reset), true on orderly EOF / stop.
bool pump_read_loop(int fd, Pump& pump) {
  std::string buf;
  char chunk[65536];
  for (;;) {
    if (g_stop || pump.draining() || pump.client_gone()) return true;
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int pr = ::poll(&p, 1, 100);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (pr == 0) continue;
    if (p.revents & (POLLERR | POLLNVAL)) return false;
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n == 0) {
      // Orderly EOF; a final unterminated line still counts.
      if (!buf.empty()) pump.submit(std::move(buf));
      return true;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t eol;
    while ((eol = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, eol);
      buf.erase(0, eol + 1);
      if (!line.empty()) pump.submit(std::move(line));
      // A worker may have processed a shutdown op already: stop
      // feeding it the rest of the buffer.
      if (pump.draining()) return true;
    }
  }
}

}  // namespace

int Server::serve_pipe(int in_fd, int out_fd) {
  install_signal_handlers();
  g_stop = 0;
  Pump pump(*this, out_fd);
  pump_read_loop(in_fd, pump);
  // EOF, signal, or shutdown: whatever is queued gets the drain
  // window, then the pump guarantees an answer for every line read.
  pump.begin_drain();
  pump.finish_input();
  pump.join();
  return 0;
}

int Server::serve_socket(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "serve: socket path too long: %s\n", path.c_str());
    return 2;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("serve: socket");
    return 2;
  }
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 8) < 0) {
    std::perror("serve: bind/listen");
    ::close(fd);
    return 2;
  }
  install_signal_handlers();
  g_stop = 0;
  bool stop = false;
  while (!stop && !g_stop) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const int pr = ::poll(&p, 1, 100);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      break;
    }
    {
      Pump pump(*this, client);
      const bool orderly = pump_read_loop(client, pump);
      if (!orderly)
        stats_.client_disconnects.fetch_add(1, std::memory_order_relaxed);
      pump.begin_drain();
      pump.finish_input();
      pump.join();
      stop = pump.shutdown_requested();
    }
    ::close(client);
    // A vanished client (EOF, reset, failed write) only ends its own
    // connection; the listener keeps accepting.
  }
  ::close(fd);
  ::unlink(path.c_str());
  return 0;
}

#else  // _WIN32

int Server::serve_pipe(int, int) {
  std::fprintf(stderr, "serve: fd mode is not supported on this platform\n");
  return 2;
}

int Server::serve_socket(const std::string&) {
  std::fprintf(stderr, "serve: --socket is not supported on this platform\n");
  return 2;
}

#endif

}  // namespace ctdf::serve
