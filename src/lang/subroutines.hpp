// FORTRAN-style subroutines with reference parameters, and the call-
// site alias analysis of the paper's Section 5.
//
// The paper's alias structures arise from reference-parameter passing:
//
//   SUBROUTINE F(X, Y, Z)      sub f(x, y, z) { ... }
//   CALL F(A, B, A)            call f(a, b, a);
//   CALL F(C, D, D)            call f(c, d, d);
//
// gives [X] = {X,Z}, [Y] = {Y,Z}, [Z] = {X,Y,Z}: X ~ Z because one
// call site passes the same actual to both, Y ~ Z because another does,
// and X !~ Y because no call site identifies them.
//
// This module implements subroutines by *expansion*: bodies are
// textually inlined at each call site with formals replaced by the
// actual argument names (actuals must be plain identifiers — that IS
// reference semantics under substitution), and exposes the Section 5
// analysis over the collected call sites so the alias structure the
// paper derives can be computed rather than hand-declared.
//
// Syntax (recognized before parsing; `sub` bodies may use structured
// statements and any global variables, but not labels/gotos):
//
//   sub name(p1, p2, ...) { ... }
//   call name(a1, a2, ...);
//
// Calls may appear inside other subroutine bodies (expansion is
// recursive); recursion is rejected with a depth check.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/diagnostics.hpp"

namespace ctdf::lang {

struct SubroutineInfo {
  std::string name;
  std::vector<std::string> formals;
  /// Actual argument names, one vector per call site (in source order,
  /// including calls reached through other subroutine bodies).
  std::vector<std::vector<std::string>> call_sites;
};

struct ExpansionResult {
  std::string source;  ///< program text with all calls inlined
  std::vector<SubroutineInfo> subroutines;
};

/// Expands all `sub`/`call` constructs in `source`. On error (unknown
/// subroutine, arity mismatch, non-identifier actual, recursion) the
/// problems go to `diags` and the result is partial.
[[nodiscard]] ExpansionResult expand_subroutines(
    std::string_view source, support::DiagnosticEngine& diags);

/// Throwing convenience wrapper.
[[nodiscard]] ExpansionResult expand_subroutines_or_throw(
    std::string_view source);

/// Section 5's analysis: formal-parameter index pairs (i < j) that may
/// alias — i.e. some call site passes the same actual (by name) to
/// both positions.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
formal_alias_pairs(const SubroutineInfo& sub);

/// Renders the alias pairs as `alias` declarations over the formals,
/// e.g. "alias x z;\nalias y z;\n" — the declarations a separate-
/// compilation frontend would hand to the Schema 3 translator.
[[nodiscard]] std::string render_alias_decls(const SubroutineInfo& sub);

}  // namespace ctdf::lang
