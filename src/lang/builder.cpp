#include "lang/builder.hpp"

#include "support/assert.hpp"

namespace ctdf::lang {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw support::CompileError("ProgramBuilder: " + msg);
}

}  // namespace

VarId ProgramBuilder::scalar(std::string_view name) {
  const auto v = program().symbols.declare_scalar(name);
  if (!v) fail("redeclaration of '" + std::string(name) + "'");
  return *v;
}

VarId ProgramBuilder::array(std::string_view name, std::int64_t size) {
  if (size <= 0) fail("array size must be positive");
  const auto v = program().symbols.declare_array(name, size);
  if (!v) fail("redeclaration of '" + std::string(name) + "'");
  return *v;
}

ProgramBuilder& ProgramBuilder::alias(VarId a, VarId b) {
  program().symbols.add_alias(a, b);
  return *this;
}

ProgramBuilder& ProgramBuilder::bind(VarId a, VarId b) {
  if (!program().symbols.bind(a, b))
    fail("cannot bind variables of different kind/size");
  return *this;
}

ProgramBuilder& ProgramBuilder::assign(VarId v, ExprPtr value) {
  if (program().symbols.is_array(v))
    fail("assign() on array '" + program().symbols.name(v) +
         "'; use assign_elem()");
  local_stmts_.push_back(Stmt::assign(LValue{v, nullptr}, std::move(value)));
  return *this;
}

ProgramBuilder& ProgramBuilder::assign_elem(VarId array, ExprPtr index,
                                            ExprPtr value) {
  if (!program().symbols.is_array(array))
    fail("assign_elem() on scalar '" + program().symbols.name(array) + "'");
  local_stmts_.push_back(
      Stmt::assign(LValue{array, std::move(index)}, std::move(value)));
  return *this;
}

ProgramBuilder& ProgramBuilder::skip() {
  local_stmts_.push_back(Stmt::skip());
  return *this;
}

std::vector<StmtPtr> ProgramBuilder::build_body(const BodyFn& fn) {
  ProgramBuilder child(&program());
  fn(child);
  return std::move(child.local_stmts_);
}

ProgramBuilder& ProgramBuilder::if_then(ExprPtr pred, const BodyFn& then_body) {
  local_stmts_.push_back(
      Stmt::if_stmt(std::move(pred), build_body(then_body), {}));
  return *this;
}

ProgramBuilder& ProgramBuilder::if_then_else(ExprPtr pred,
                                             const BodyFn& then_body,
                                             const BodyFn& else_body) {
  local_stmts_.push_back(Stmt::if_stmt(std::move(pred), build_body(then_body),
                                       build_body(else_body)));
  return *this;
}

ProgramBuilder& ProgramBuilder::while_loop(ExprPtr pred, const BodyFn& body) {
  local_stmts_.push_back(Stmt::while_stmt(std::move(pred), build_body(body)));
  return *this;
}

Program ProgramBuilder::finish() && {
  CTDF_ASSERT_MSG(root_ == nullptr, "finish() on a nested-body builder");
  own_.body = std::move(local_stmts_);
  return std::move(own_);
}

}  // namespace ctdf::lang
