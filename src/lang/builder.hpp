// Fluent construction of lang::Program from C++ — for library users
// (tools, generators, embedders) who want to build programs without
// going through source text.
//
//   ProgramBuilder b;
//   auto x = b.scalar("x");
//   auto a = b.array("a", 16);
//   b.assign(x, b.add(b.var(x), b.lit(1)));
//   b.while_loop(b.lt(b.var(x), b.lit(5)), [&](ProgramBuilder& body) {
//     body.assign_elem(a, body.var(x), body.var(x));
//     body.assign(x, body.add(body.var(x), body.lit(1)));
//   });
//   lang::Program prog = std::move(b).finish();
//
// Expressions are freshly-built AST trees (ExprPtr is move-only; build
// each operand in place). Labels/gotos are intentionally not exposed —
// structured control flow covers API users; unstructured programs come
// from source text.
#pragma once

#include <functional>
#include <string_view>
#include <utility>

#include "lang/ast.hpp"

namespace ctdf::lang {

class ProgramBuilder {
 public:
  ProgramBuilder() = default;

  // --- declarations (throw support::CompileError on duplicates) -----------
  VarId scalar(std::string_view name);
  VarId array(std::string_view name, std::int64_t size);
  ProgramBuilder& alias(VarId a, VarId b);
  ProgramBuilder& bind(VarId a, VarId b);

  // --- expressions ----------------------------------------------------------
  [[nodiscard]] ExprPtr lit(std::int64_t v) const { return Expr::constant(v); }
  [[nodiscard]] ExprPtr var(VarId v) const { return Expr::variable(v); }
  [[nodiscard]] ExprPtr elem(VarId array, ExprPtr index) const {
    return Expr::array_ref(array, std::move(index));
  }
  [[nodiscard]] ExprPtr bin(BinOp op, ExprPtr l, ExprPtr r) const {
    return Expr::binary(op, std::move(l), std::move(r));
  }
  [[nodiscard]] ExprPtr add(ExprPtr l, ExprPtr r) const {
    return bin(BinOp::kAdd, std::move(l), std::move(r));
  }
  [[nodiscard]] ExprPtr sub(ExprPtr l, ExprPtr r) const {
    return bin(BinOp::kSub, std::move(l), std::move(r));
  }
  [[nodiscard]] ExprPtr mul(ExprPtr l, ExprPtr r) const {
    return bin(BinOp::kMul, std::move(l), std::move(r));
  }
  [[nodiscard]] ExprPtr lt(ExprPtr l, ExprPtr r) const {
    return bin(BinOp::kLt, std::move(l), std::move(r));
  }
  [[nodiscard]] ExprPtr eq(ExprPtr l, ExprPtr r) const {
    return bin(BinOp::kEq, std::move(l), std::move(r));
  }
  [[nodiscard]] ExprPtr neg(ExprPtr e) const {
    return Expr::unary(UnOp::kNeg, std::move(e));
  }
  [[nodiscard]] ExprPtr logical_not(ExprPtr e) const {
    return Expr::unary(UnOp::kNot, std::move(e));
  }

  // --- statements -------------------------------------------------------------
  ProgramBuilder& assign(VarId v, ExprPtr value);
  ProgramBuilder& assign_elem(VarId array, ExprPtr index, ExprPtr value);
  ProgramBuilder& skip();

  using BodyFn = std::function<void(ProgramBuilder&)>;
  /// if pred { then_body } [ else { else_body } ]
  ProgramBuilder& if_then(ExprPtr pred, const BodyFn& then_body);
  ProgramBuilder& if_then_else(ExprPtr pred, const BodyFn& then_body,
                               const BodyFn& else_body);
  /// while pred { body }
  ProgramBuilder& while_loop(ExprPtr pred, const BodyFn& body);

  /// Consumes the builder.
  [[nodiscard]] Program finish() &&;

 private:
  /// Child builder sharing the symbol table (for nested bodies).
  explicit ProgramBuilder(Program* root) : root_(root) {}

  Program& program() { return root_ ? *root_ : own_; }
  std::vector<StmtPtr> build_body(const BodyFn& fn);

  Program own_;
  Program* root_ = nullptr;            ///< set for nested-body builders
  std::vector<StmtPtr> local_stmts_;   ///< nested builders collect here
};

}  // namespace ctdf::lang
