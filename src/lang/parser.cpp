#include "lang/parser.hpp"

#include <unordered_set>
#include <utility>

#include "lang/lexer.hpp"
#include "support/assert.hpp"

namespace ctdf::lang {

namespace {

class Parser {
 public:
  Parser(std::string_view source, support::DiagnosticEngine& diags)
      : diags_(diags), tokens_(lex(source, diags)) {}

  Program run() {
    Program prog;
    parse_decls(prog);
    while (!at(TokKind::kEof)) {
      if (!parse_stmt(prog, prog.body, /*top_level=*/true)) sync();
    }
    validate_labels(prog);
    return prog;
  }

 private:
  // --- token helpers -----------------------------------------------------

  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  [[nodiscard]] bool at(TokKind k) const { return peek().kind == k; }
  Token advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  bool accept(TokKind k) {
    if (!at(k)) return false;
    advance();
    return true;
  }

  bool expect(TokKind k) {
    if (accept(k)) return true;
    error(peek().loc, std::string("expected ") + to_string(k) + ", found " +
                          to_string(peek().kind));
    return false;
  }

  void error(support::SourceLoc loc, std::string msg) {
    diags_.error(loc, std::move(msg));
  }

  /// Error recovery: skip to just past the next ';' or to a '}' / eof.
  void sync() {
    while (!at(TokKind::kEof)) {
      if (accept(TokKind::kSemi)) return;
      if (at(TokKind::kRBrace)) return;
      advance();
    }
  }

  // --- declarations -------------------------------------------------------

  void parse_decls(Program& prog) {
    for (;;) {
      if (at(TokKind::kVar)) {
        advance();
        do {
          const Token t = peek();
          if (!expect(TokKind::kIdent)) break;
          if (!prog.symbols.declare_scalar(t.text))
            error(t.loc, "redeclaration of '" + std::string(t.text) + "'");
        } while (accept(TokKind::kComma));
        expect(TokKind::kSemi);
      } else if (at(TokKind::kArray)) {
        advance();
        do {
          const Token t = peek();
          if (!expect(TokKind::kIdent)) break;
          if (!expect(TokKind::kLBracket)) break;
          const Token size = peek();
          if (!expect(TokKind::kInt)) break;
          if (!expect(TokKind::kRBracket)) break;
          if (size.int_value <= 0) {
            error(size.loc, "array size must be positive");
          } else if (!prog.symbols.declare_array(t.text, size.int_value)) {
            error(t.loc, "redeclaration of '" + std::string(t.text) + "'");
          }
        } while (accept(TokKind::kComma));
        expect(TokKind::kSemi);
      } else if (at(TokKind::kAlias) || at(TokKind::kBind)) {
        const bool is_bind = at(TokKind::kBind);
        advance();
        const Token a = peek();
        if (!expect(TokKind::kIdent)) { sync(); continue; }
        const Token b = peek();
        if (!expect(TokKind::kIdent)) { sync(); continue; }
        expect(TokKind::kSemi);
        const auto va = prog.symbols.lookup(a.text);
        const auto vb = prog.symbols.lookup(b.text);
        if (!va) error(a.loc, "undeclared variable '" + std::string(a.text) + "'");
        if (!vb) error(b.loc, "undeclared variable '" + std::string(b.text) + "'");
        if (va && vb) {
          if (is_bind) {
            if (!prog.symbols.bind(*va, *vb))
              error(a.loc, "cannot bind variables of different kind/size");
          } else {
            prog.symbols.add_alias(*va, *vb);
          }
        }
      } else {
        return;
      }
    }
  }

  // --- statements ----------------------------------------------------------

  bool parse_stmt(Program& prog, std::vector<StmtPtr>& out, bool top_level) {
    std::vector<std::string> labels;
    while (at(TokKind::kIdent) && peek(1).kind == TokKind::kColon) {
      const Token label = advance();
      advance();  // ':'
      if (!top_level) {
        error(label.loc, "labels are only allowed at the top level");
      } else {
        labels.emplace_back(label.text);
      }
    }
    const Token first = peek();
    StmtPtr stmt;
    if (at(TokKind::kGoto)) {
      advance();
      const Token t = peek();
      if (!expect(TokKind::kIdent)) return false;
      if (!expect(TokKind::kSemi)) return false;
      if (!top_level) {
        error(first.loc, "goto is only allowed at the top level");
        return false;
      }
      stmt = Stmt::goto_stmt(std::string(t.text), first.loc);
    } else if (at(TokKind::kIf)) {
      advance();
      auto pred = parse_expr(prog);
      if (!pred) return false;
      if (accept(TokKind::kThen)) {
        // Unstructured fork: if e then goto l1 else goto l2;
        if (!expect(TokKind::kGoto)) return false;
        const Token lt = peek();
        if (!expect(TokKind::kIdent)) return false;
        if (!expect(TokKind::kElse)) return false;
        if (!expect(TokKind::kGoto)) return false;
        const Token lf = peek();
        if (!expect(TokKind::kIdent)) return false;
        if (!expect(TokKind::kSemi)) return false;
        if (!top_level) {
          error(first.loc, "conditional goto is only allowed at the top level");
          return false;
        }
        stmt = Stmt::cond_goto(std::move(pred), std::string(lt.text),
                               std::string(lf.text), first.loc);
      } else {
        std::vector<StmtPtr> then_body;
        if (!parse_block(prog, then_body)) return false;
        std::vector<StmtPtr> else_body;
        if (accept(TokKind::kElse)) {
          if (!parse_block(prog, else_body)) return false;
        }
        stmt = Stmt::if_stmt(std::move(pred), std::move(then_body),
                             std::move(else_body), first.loc);
      }
    } else if (at(TokKind::kWhile)) {
      advance();
      auto pred = parse_expr(prog);
      if (!pred) return false;
      std::vector<StmtPtr> body;
      if (!parse_block(prog, body)) return false;
      stmt = Stmt::while_stmt(std::move(pred), std::move(body), first.loc);
    } else if (at(TokKind::kSkip)) {
      advance();
      if (!expect(TokKind::kSemi)) return false;
      stmt = Stmt::skip(first.loc);
    } else if (at(TokKind::kIdent)) {
      auto lv = parse_lvalue(prog);
      if (!lv) return false;
      if (!expect(TokKind::kAssign)) return false;
      auto rhs = parse_expr(prog);
      if (!rhs) return false;
      if (!expect(TokKind::kSemi)) return false;
      stmt = Stmt::assign(std::move(*lv), std::move(rhs), first.loc);
    } else {
      error(first.loc,
            std::string("expected statement, found ") + to_string(first.kind));
      return false;
    }
    stmt->labels = std::move(labels);
    out.push_back(std::move(stmt));
    return true;
  }

  bool parse_block(Program& prog, std::vector<StmtPtr>& out) {
    if (!expect(TokKind::kLBrace)) return false;
    while (!at(TokKind::kRBrace) && !at(TokKind::kEof)) {
      if (!parse_stmt(prog, out, /*top_level=*/false)) sync();
    }
    return expect(TokKind::kRBrace);
  }

  std::optional<LValue> parse_lvalue(Program& prog) {
    const Token t = advance();  // ident, already checked
    const auto v = prog.symbols.lookup(t.text);
    if (!v) {
      error(t.loc, "undeclared variable '" + std::string(t.text) + "'");
      return std::nullopt;
    }
    LValue lv;
    lv.var = *v;
    if (accept(TokKind::kLBracket)) {
      if (!prog.symbols.is_array(*v))
        error(t.loc, "'" + std::string(t.text) + "' is not an array");
      lv.index = parse_expr(prog);
      if (!lv.index) return std::nullopt;
      if (!expect(TokKind::kRBracket)) return std::nullopt;
    } else if (prog.symbols.is_array(*v)) {
      error(t.loc, "array '" + std::string(t.text) + "' needs a subscript");
      return std::nullopt;
    }
    return lv;
  }

  // --- expressions ----------------------------------------------------------

  /// Binding power of an infix operator, or 0 if `k` is not one.
  static int infix_power(TokKind k) {
    switch (k) {
      case TokKind::kOrOr: return 1;
      case TokKind::kAndAnd: return 2;
      case TokKind::kEqEq: case TokKind::kNe: case TokKind::kLt:
      case TokKind::kLe: case TokKind::kGt: case TokKind::kGe: return 3;
      case TokKind::kPlus: case TokKind::kMinus: return 4;
      case TokKind::kStar: case TokKind::kSlash: case TokKind::kPercent:
        return 5;
      default: return 0;
    }
  }

  static BinOp to_binop(TokKind k) {
    switch (k) {
      case TokKind::kOrOr: return BinOp::kOr;
      case TokKind::kAndAnd: return BinOp::kAnd;
      case TokKind::kEqEq: return BinOp::kEq;
      case TokKind::kNe: return BinOp::kNe;
      case TokKind::kLt: return BinOp::kLt;
      case TokKind::kLe: return BinOp::kLe;
      case TokKind::kGt: return BinOp::kGt;
      case TokKind::kGe: return BinOp::kGe;
      case TokKind::kPlus: return BinOp::kAdd;
      case TokKind::kMinus: return BinOp::kSub;
      case TokKind::kStar: return BinOp::kMul;
      case TokKind::kSlash: return BinOp::kDiv;
      case TokKind::kPercent: return BinOp::kMod;
      default: CTDF_UNREACHABLE("not an infix operator");
    }
  }

  ExprPtr parse_expr(Program& prog, int min_power = 1) {
    auto lhs = parse_unary(prog);
    if (!lhs) return nullptr;
    for (;;) {
      const int power = infix_power(peek().kind);
      if (power < min_power) break;
      const Token op = advance();
      auto rhs = parse_expr(prog, power + 1);  // left-associative
      if (!rhs) return nullptr;
      lhs = Expr::binary(to_binop(op.kind), std::move(lhs), std::move(rhs),
                         op.loc);
    }
    return lhs;
  }

  ExprPtr parse_unary(Program& prog) {
    const Token t = peek();
    if (accept(TokKind::kMinus)) {
      auto e = parse_unary(prog);
      return e ? Expr::unary(UnOp::kNeg, std::move(e), t.loc) : nullptr;
    }
    if (accept(TokKind::kBang)) {
      auto e = parse_unary(prog);
      return e ? Expr::unary(UnOp::kNot, std::move(e), t.loc) : nullptr;
    }
    return parse_primary(prog);
  }

  ExprPtr parse_primary(Program& prog) {
    const Token t = advance();
    switch (t.kind) {
      case TokKind::kInt:
        return Expr::constant(t.int_value, t.loc);
      case TokKind::kLParen: {
        auto e = parse_expr(prog);
        if (!e) return nullptr;
        if (!expect(TokKind::kRParen)) return nullptr;
        return e;
      }
      case TokKind::kIdent: {
        const auto v = prog.symbols.lookup(t.text);
        if (!v) {
          error(t.loc, "undeclared variable '" + std::string(t.text) + "'");
          return nullptr;
        }
        if (accept(TokKind::kLBracket)) {
          if (!prog.symbols.is_array(*v))
            error(t.loc, "'" + std::string(t.text) + "' is not an array");
          auto idx = parse_expr(prog);
          if (!idx) return nullptr;
          if (!expect(TokKind::kRBracket)) return nullptr;
          return Expr::array_ref(*v, std::move(idx), t.loc);
        }
        if (prog.symbols.is_array(*v)) {
          error(t.loc, "array '" + std::string(t.text) + "' needs a subscript");
          return nullptr;
        }
        return Expr::variable(*v, t.loc);
      }
      default:
        error(t.loc, std::string("expected expression, found ") +
                         to_string(t.kind));
        return nullptr;
    }
  }

  // --- label validation ------------------------------------------------------

  void validate_labels(Program& prog) {
    std::unordered_set<std::string> defined{"end"};
    for (const auto& s : prog.body) {
      for (const auto& l : s->labels) {
        if (l == "end" || l == "start") {
          error(s->loc, "label '" + l + "' is reserved");
        } else if (!defined.insert(l).second) {
          error(s->loc, "duplicate label '" + l + "'");
        }
      }
    }
    for (const auto& s : prog.body) {
      if (s->kind == Stmt::Kind::kGoto || s->kind == Stmt::Kind::kCondGoto) {
        if (!defined.contains(s->target_true))
          error(s->loc, "undefined label '" + s->target_true + "'");
        if (s->kind == Stmt::Kind::kCondGoto &&
            !defined.contains(s->target_false))
          error(s->loc, "undefined label '" + s->target_false + "'");
      }
    }
  }

  support::DiagnosticEngine& diags_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(std::string_view source, support::DiagnosticEngine& diags) {
  return Parser{source, diags}.run();
}

Program parse_or_throw(std::string_view source) {
  support::DiagnosticEngine diags;
  Program prog = parse(source, diags);
  diags.throw_if_errors();
  return prog;
}

}  // namespace ctdf::lang
