#include "lang/subroutines.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>

#include "lang/lexer.hpp"
#include "support/assert.hpp"

namespace ctdf::lang {

namespace {

constexpr int kMaxExpansionDepth = 16;

struct SubDef {
  SubroutineInfo info;
  std::vector<Token> body;  ///< tokens between the braces (exclusive)
};

class Expander {
 public:
  Expander(std::string_view source, support::DiagnosticEngine& diags)
      : diags_(diags), tokens_(lex(source, diags)) {}

  ExpansionResult run() {
    std::vector<Token> program;
    collect_and_strip(program);
    std::vector<Token> expanded;
    expand_stream(program, {}, 0, expanded);
    ExpansionResult out;
    out.source = render(expanded);
    for (auto& [name, def] : subs_) out.subroutines.push_back(def.info);
    return out;
  }

 private:
  // --- pass 1: collect `sub` definitions, keep the rest ---------------------

  void collect_and_strip(std::vector<Token>& program) {
    std::size_t i = 0;
    while (tokens_[i].kind != TokKind::kEof) {
      if (tokens_[i].kind == TokKind::kIdent && tokens_[i].text == "sub") {
        parse_sub(i);  // advances i past the definition
      } else {
        program.push_back(tokens_[i++]);
      }
    }
  }

  void parse_sub(std::size_t& i) {
    const auto loc = tokens_[i].loc;
    ++i;  // 'sub'
    SubDef def;
    if (tokens_[i].kind != TokKind::kIdent) {
      diags_.error(loc, "expected subroutine name after 'sub'");
      return skip_to_close_brace(i);
    }
    def.info.name = std::string(tokens_[i++].text);
    if (tokens_[i].kind != TokKind::kLParen) {
      diags_.error(loc, "expected '(' after subroutine name");
      return skip_to_close_brace(i);
    }
    ++i;
    while (tokens_[i].kind == TokKind::kIdent) {
      def.info.formals.emplace_back(tokens_[i++].text);
      if (tokens_[i].kind == TokKind::kComma) ++i;
    }
    if (tokens_[i].kind != TokKind::kRParen) {
      diags_.error(loc, "expected ')' after parameter list");
      return skip_to_close_brace(i);
    }
    ++i;
    if (tokens_[i].kind != TokKind::kLBrace) {
      diags_.error(loc, "expected '{' to open subroutine body");
      return skip_to_close_brace(i);
    }
    ++i;
    int depth = 1;
    while (depth > 0 && tokens_[i].kind != TokKind::kEof) {
      if (tokens_[i].kind == TokKind::kLBrace) ++depth;
      if (tokens_[i].kind == TokKind::kRBrace && --depth == 0) break;
      def.body.push_back(tokens_[i++]);
    }
    if (tokens_[i].kind == TokKind::kEof) {
      diags_.error(loc, "unterminated subroutine body");
      return;
    }
    ++i;  // closing '}'
    if (subs_.contains(def.info.name)) {
      diags_.error(loc, "redefinition of subroutine '" + def.info.name + "'");
      return;
    }
    subs_.emplace(def.info.name, std::move(def));
  }

  void skip_to_close_brace(std::size_t& i) {
    int depth = 0;
    while (tokens_[i].kind != TokKind::kEof) {
      if (tokens_[i].kind == TokKind::kLBrace) ++depth;
      if (tokens_[i].kind == TokKind::kRBrace && --depth <= 0) {
        ++i;
        return;
      }
      ++i;
    }
  }

  // --- pass 2: expand calls, substituting formals ----------------------------

  using Substitution = std::map<std::string, std::string, std::less<>>;

  void expand_stream(const std::vector<Token>& in, const Substitution& subst,
                     int depth, std::vector<Token>& out) {
    if (depth > kMaxExpansionDepth) {
      diags_.error({}, "subroutine expansion too deep (recursive calls?)");
      return;
    }
    std::size_t i = 0;
    while (i < in.size()) {
      const Token& t = in[i];
      if (t.kind == TokKind::kIdent && t.text == "call") {
        i = expand_call(in, i, subst, depth, out);
        continue;
      }
      if (t.kind == TokKind::kIdent) {
        const auto it = subst.find(t.text);
        if (it != subst.end()) {
          Token repl = t;
          // Token text is a view; intern the replacement so it outlives
          // the per-call substitution map.
          repl.text = interned_.emplace_back(it->second);
          out.push_back(repl);
          ++i;
          continue;
        }
      }
      out.push_back(t);
      ++i;
    }
  }

  std::size_t expand_call(const std::vector<Token>& in, std::size_t i,
                          const Substitution& subst, int depth,
                          std::vector<Token>& out) {
    const auto loc = in[i].loc;
    const auto fail = [&](const std::string& msg) {
      diags_.error(loc, msg);
      // Skip to just past the next ';' to keep parsing the rest.
      while (i < in.size() && in[i].kind != TokKind::kSemi) ++i;
      return i < in.size() ? i + 1 : i;
    };
    ++i;  // 'call'
    if (i >= in.size() || in[i].kind != TokKind::kIdent)
      return fail("expected subroutine name after 'call'");
    const std::string name{in[i].text};
    ++i;
    const auto it = subs_.find(name);
    if (it == subs_.end())
      return fail("call to unknown subroutine '" + name + "'");
    SubDef& def = it->second;
    if (i >= in.size() || in[i].kind != TokKind::kLParen)
      return fail("expected '(' after subroutine name");
    ++i;
    std::vector<std::string> actuals;
    while (i < in.size() && in[i].kind == TokKind::kIdent) {
      std::string actual{in[i].text};
      // Apply the enclosing substitution: a formal passed onward
      // becomes the outer actual.
      if (const auto s = subst.find(actual); s != subst.end())
        actual = s->second;
      actuals.push_back(std::move(actual));
      ++i;
      if (i < in.size() && in[i].kind == TokKind::kComma) ++i;
    }
    if (i >= in.size() || in[i].kind != TokKind::kRParen)
      return fail("arguments to 'call' must be plain variable names "
                  "(reference parameters)");
    ++i;
    if (i >= in.size() || in[i].kind != TokKind::kSemi)
      return fail("expected ';' after call");
    ++i;
    if (actuals.size() != def.info.formals.size())
      return fail("call to '" + name + "' passes " +
                  std::to_string(actuals.size()) + " argument(s), expected " +
                  std::to_string(def.info.formals.size()));

    def.info.call_sites.push_back(actuals);
    Substitution inner;
    for (std::size_t k = 0; k < actuals.size(); ++k)
      inner.emplace(def.info.formals[k], actuals[k]);
    expand_stream(def.body, inner, depth + 1, out);
    return i;
  }

  // --- rendering --------------------------------------------------------------

  static std::string render(const std::vector<Token>& tokens) {
    std::ostringstream os;
    for (const Token& t : tokens) {
      os << t.text;
      switch (t.kind) {
        case TokKind::kSemi:
        case TokKind::kLBrace:
        case TokKind::kRBrace:
        case TokKind::kColon:
          os << '\n';
          break;
        default:
          os << ' ';
          break;
      }
    }
    return os.str();
  }

  support::DiagnosticEngine& diags_;
  std::vector<Token> tokens_;
  std::map<std::string, SubDef, std::less<>> subs_;
  std::deque<std::string> interned_;  ///< stable storage for substituted text
};

}  // namespace

ExpansionResult expand_subroutines(std::string_view source,
                                   support::DiagnosticEngine& diags) {
  return Expander{source, diags}.run();
}

ExpansionResult expand_subroutines_or_throw(std::string_view source) {
  support::DiagnosticEngine diags;
  ExpansionResult out = expand_subroutines(source, diags);
  diags.throw_if_errors();
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> formal_alias_pairs(
    const SubroutineInfo& sub) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (const auto& site : sub.call_sites) {
    for (std::size_t i = 0; i < site.size(); ++i) {
      for (std::size_t j = i + 1; j < site.size(); ++j) {
        if (site[i] != site[j]) continue;
        const auto pair = std::make_pair(i, j);
        if (std::find(out.begin(), out.end(), pair) == out.end())
          out.push_back(pair);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string render_alias_decls(const SubroutineInfo& sub) {
  std::string out;
  for (const auto& [i, j] : formal_alias_pairs(sub))
    out += "alias " + sub.formals[i] + " " + sub.formals[j] + ";\n";
  return out;
}

}  // namespace ctdf::lang
