#include "lang/interp.hpp"

#include <unordered_map>

#include "support/assert.hpp"

namespace ctdf::lang {

namespace {

class Interp {
 public:
  explicit Interp(const Program& prog, std::uint64_t max_steps)
      : prog_(prog), layout_(prog.symbols), fuel_(max_steps) {
    store_.cells.assign(layout_.total_cells(), 0);
    for (std::size_t i = 0; i < prog.body.size(); ++i)
      for (const auto& l : prog.body[i]->labels) labels_.emplace(l, i);
    labels_.emplace("end", prog.body.size());
  }

  InterpResult run() {
    InterpResult result;
    std::size_t pc = 0;
    while (pc < prog_.body.size()) {
      if (!step_budget()) return result;  // fuel exhausted, not completed
      const Stmt& s = *prog_.body[pc];
      std::size_t next = pc + 1;
      if (!exec(s, &next)) return result;
      pc = next;
    }
    result.completed = true;
    result.steps = steps_;
    result.store = std::move(store_);
    return result;
  }

 private:
  bool step_budget() {
    if (steps_ >= fuel_) return false;
    ++steps_;
    return true;
  }

  /// Executes one statement; for top-level statements `*next` receives
  /// the successor index. Returns false iff fuel ran out inside a
  /// nested body.
  bool exec(const Stmt& s, std::size_t* next) {
    switch (s.kind) {
      case Stmt::Kind::kAssign: {
        const std::int64_t value = eval(*s.expr);
        store_cell(cell_of(s.lhs), value);
        return true;
      }
      case Stmt::Kind::kSkip:
        return true;
      case Stmt::Kind::kGoto:
        *next = target(s.target_true);
        return true;
      case Stmt::Kind::kCondGoto:
        *next = target(eval(*s.expr) != 0 ? s.target_true : s.target_false);
        return true;
      case Stmt::Kind::kIf: {
        const auto& body = eval(*s.expr) != 0 ? s.then_body : s.else_body;
        return exec_block(body);
      }
      case Stmt::Kind::kWhile:
        while (eval(*s.expr) != 0) {
          if (!exec_block(s.then_body)) return false;
          if (!step_budget()) return false;  // charge each re-test
        }
        return true;
    }
    CTDF_UNREACHABLE("bad Stmt::Kind");
  }

  bool exec_block(const std::vector<StmtPtr>& body) {
    for (const auto& s : body) {
      if (!step_budget()) return false;
      std::size_t unused = 0;
      if (!exec(*s, &unused)) return false;
    }
    return true;
  }

  std::size_t target(const std::string& label) const {
    const auto it = labels_.find(label);
    CTDF_ASSERT_MSG(it != labels_.end(), "parser validated labels");
    return it->second;
  }

  std::size_t cell_of(const LValue& lv) {
    const std::size_t base = layout_.base(lv.var);
    if (!lv.is_array_elem()) return base;
    const auto n = static_cast<std::int64_t>(layout_.extent(lv.var));
    return base + static_cast<std::size_t>(wrap_index(eval(*lv.index), n));
  }

  void store_cell(std::size_t cell, std::int64_t v) {
    CTDF_ASSERT(cell < store_.cells.size());
    store_.cells[cell] = v;
  }

  std::int64_t eval(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kConst:
        return e.value;
      case Expr::Kind::kVar:
        return store_.cells[layout_.base(e.var)];
      case Expr::Kind::kArrayRef: {
        const auto n = static_cast<std::int64_t>(layout_.extent(e.var));
        const std::int64_t i = wrap_index(eval(*e.lhs), n);
        return store_.cells[layout_.base(e.var) + static_cast<std::size_t>(i)];
      }
      case Expr::Kind::kBinary:
        // Note: && and || are NOT short-circuiting — both operands are
        // always evaluated, matching the dataflow translation where both
        // operand subgraphs always fire.
        return eval_binop(e.bop, eval(*e.lhs), eval(*e.rhs));
      case Expr::Kind::kUnary:
        return eval_unop(e.uop, eval(*e.lhs));
    }
    CTDF_UNREACHABLE("bad Expr::Kind");
  }

  const Program& prog_;
  StorageLayout layout_;
  Store store_;
  std::unordered_map<std::string, std::size_t> labels_;
  std::uint64_t fuel_;
  std::uint64_t steps_ = 0;
};

}  // namespace

InterpResult interpret(const Program& prog, std::uint64_t max_steps) {
  return Interp{prog, max_steps}.run();
}

std::int64_t load_var(const Program& prog, const Store& store, VarId v,
                      std::int64_t index) {
  const StorageLayout layout{prog.symbols};
  std::size_t cell = layout.base(v);
  if (prog.symbols.is_array(v)) {
    cell += static_cast<std::size_t>(
        wrap_index(index, static_cast<std::int64_t>(layout.extent(v))));
  }
  CTDF_ASSERT(cell < store.cells.size());
  return store.cells[cell];
}

}  // namespace ctdf::lang
