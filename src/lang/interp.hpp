// Reference sequential interpreter.
//
// This is the ground truth for every schema-equivalence test: a dataflow
// translation is correct iff simulating it yields the same final store
// as this interpreter, for every program.
//
// Semantics notes (all deliberate, shared with the machine ALU):
//  * int64 arithmetic wraps; x/0 == x%0 == 0 (see lang/ast.hpp).
//  * Array subscripts are wrapped into range: effective index is
//    ((i mod n) + n) mod n for an array of size n. This keeps randomly
//    generated programs total so property tests never have to reject
//    out-of-range traces.
//  * All storage cells start at 0.
//  * Execution is fuel-limited; a program that exhausts its fuel is
//    reported as not completed (tests skip or shrink such cases).
#pragma once

#include <cstdint>
#include <vector>

#include "lang/ast.hpp"

namespace ctdf::lang {

/// Flat storage: one int64 per cell, laid out by StorageLayout.
struct Store {
  std::vector<std::int64_t> cells;

  friend bool operator==(const Store&, const Store&) = default;
};

struct InterpResult {
  bool completed = false;    ///< false iff fuel ran out
  std::uint64_t steps = 0;   ///< statements executed
  Store store;               ///< final memory (valid only if completed)
};

/// Wrap an array subscript into [0, n). Shared with machine memory ops.
[[nodiscard]] constexpr std::int64_t wrap_index(std::int64_t i,
                                                std::int64_t n) {
  const std::int64_t m = i % n;
  return m < 0 ? m + n : m;
}

/// Runs `prog` from an all-zero store.
[[nodiscard]] InterpResult interpret(const Program& prog,
                                     std::uint64_t max_steps = 1'000'000);

/// Reads variable `v` (scalar) or `v[index]` out of a store, using the
/// same layout/wrapping rules as the interpreter.
[[nodiscard]] std::int64_t load_var(const Program& prog, const Store& store,
                                    VarId v, std::int64_t index = 0);

}  // namespace ctdf::lang
