// Recursive-descent parser for the ctdf source language.
//
// Grammar (EBNF; `//` and `#` start line comments):
//
//   program   := decl* stmt*
//   decl      := "var" ident ("," ident)* ";"
//              | "array" ident "[" INT "]" ("," ident "[" INT "]")* ";"
//              | "alias" ident ident ";"     // may-alias (Sec. 5, Def. 6)
//              | "bind"  ident ident ";"     // same storage at run time
//   stmt      := (ident ":")* core           // labels: top level only
//   core      := lvalue ":=" expr ";"
//              | "goto" ident ";"
//              | "if" expr "then" "goto" ident "else" "goto" ident ";"
//              | "if" expr "{" stmt* "}" ("else" "{" stmt* "}")?
//              | "while" expr "{" stmt* "}"
//              | "skip" ";"
//   lvalue    := ident | ident "[" expr "]"
//   expr      := precedence climbing over || && (==|!=|<|<=|>|>=) (+|-)
//                (*|/|%) with unary - and ! and parentheses
//
// Restrictions enforced here (documented in ast.hpp): labels and gotos
// may appear only in the top-level statement sequence; `end` is a
// predefined label denoting program exit; every goto target must
// resolve; all variables must be declared before use; array subscripts
// only on arrays, bare references only on scalars.
#pragma once

#include <string_view>

#include "lang/ast.hpp"
#include "support/diagnostics.hpp"

namespace ctdf::lang {

/// Parses `source`; reports problems to `diags`. Returns the (possibly
/// partial) program; callers should check `diags.has_errors()`.
[[nodiscard]] Program parse(std::string_view source,
                            support::DiagnosticEngine& diags);

/// Convenience wrapper: parses and throws support::CompileError on any
/// error.
[[nodiscard]] Program parse_or_throw(std::string_view source);

}  // namespace ctdf::lang
