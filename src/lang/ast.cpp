#include "lang/ast.hpp"

#include <algorithm>
#include <sstream>

#include "support/assert.hpp"

namespace ctdf::lang {

const char* to_string(BinOp op) {
  switch (op) {
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kEq: return "==";
    case BinOp::kNe: return "!=";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAnd: return "&&";
    case BinOp::kOr: return "||";
  }
  CTDF_UNREACHABLE("bad BinOp");
}

const char* to_string(UnOp op) {
  switch (op) {
    case UnOp::kNeg: return "-";
    case UnOp::kNot: return "!";
  }
  CTDF_UNREACHABLE("bad UnOp");
}

std::int64_t eval_binop(BinOp op, std::int64_t a, std::int64_t b) {
  using U = std::uint64_t;
  switch (op) {
    // Wrapping arithmetic via unsigned, so overflow is well-defined.
    case BinOp::kAdd: return static_cast<std::int64_t>(U(a) + U(b));
    case BinOp::kSub: return static_cast<std::int64_t>(U(a) - U(b));
    case BinOp::kMul: return static_cast<std::int64_t>(U(a) * U(b));
    case BinOp::kDiv:
      if (b == 0) return 0;
      if (a == INT64_MIN && b == -1) return INT64_MIN;  // wrap, don't trap
      return a / b;
    case BinOp::kMod:
      if (b == 0) return 0;
      if (a == INT64_MIN && b == -1) return 0;
      return a % b;
    case BinOp::kEq: return a == b;
    case BinOp::kNe: return a != b;
    case BinOp::kLt: return a < b;
    case BinOp::kLe: return a <= b;
    case BinOp::kGt: return a > b;
    case BinOp::kGe: return a >= b;
    case BinOp::kAnd: return (a != 0 && b != 0) ? 1 : 0;
    case BinOp::kOr: return (a != 0 || b != 0) ? 1 : 0;
  }
  CTDF_UNREACHABLE("bad BinOp");
}

std::int64_t eval_unop(UnOp op, std::int64_t a) {
  switch (op) {
    case UnOp::kNeg: return static_cast<std::int64_t>(-static_cast<std::uint64_t>(a));
    case UnOp::kNot: return a == 0 ? 1 : 0;
  }
  CTDF_UNREACHABLE("bad UnOp");
}

ExprPtr Expr::constant(std::int64_t v, support::SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kConst;
  e->loc = loc;
  e->value = v;
  return e;
}

ExprPtr Expr::variable(VarId v, support::SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kVar;
  e->loc = loc;
  e->var = v;
  return e;
}

ExprPtr Expr::array_ref(VarId base, ExprPtr index, support::SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kArrayRef;
  e->loc = loc;
  e->var = base;
  e->lhs = std::move(index);
  return e;
}

ExprPtr Expr::binary(BinOp op, ExprPtr l, ExprPtr r, support::SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->loc = loc;
  e->bop = op;
  e->lhs = std::move(l);
  e->rhs = std::move(r);
  return e;
}

ExprPtr Expr::unary(UnOp op, ExprPtr operand, support::SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->loc = loc;
  e->uop = op;
  e->lhs = std::move(operand);
  return e;
}

ExprPtr Expr::clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->loc = loc;
  e->value = value;
  e->var = var;
  e->bop = bop;
  e->uop = uop;
  if (lhs) e->lhs = lhs->clone();
  if (rhs) e->rhs = rhs->clone();
  return e;
}

void Expr::collect_vars(std::vector<VarId>& out) const {
  switch (kind) {
    case Kind::kConst:
      break;
    case Kind::kVar:
    case Kind::kArrayRef:
      if (std::find(out.begin(), out.end(), var) == out.end())
        out.push_back(var);
      if (lhs) lhs->collect_vars(out);
      break;
    case Kind::kBinary:
      lhs->collect_vars(out);
      rhs->collect_vars(out);
      break;
    case Kind::kUnary:
      lhs->collect_vars(out);
      break;
  }
}

std::string Expr::to_string(const SymbolTable& syms) const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kConst:
      os << value;
      break;
    case Kind::kVar:
      os << syms.name(var);
      break;
    case Kind::kArrayRef:
      os << syms.name(var) << '[' << lhs->to_string(syms) << ']';
      break;
    case Kind::kBinary:
      os << '(' << lhs->to_string(syms) << ' ' << lang::to_string(bop) << ' '
         << rhs->to_string(syms) << ')';
      break;
    case Kind::kUnary:
      os << lang::to_string(uop) << '(' << lhs->to_string(syms) << ')';
      break;
  }
  return os.str();
}

LValue LValue::clone() const {
  LValue out;
  out.var = var;
  if (index) out.index = index->clone();
  return out;
}

std::string LValue::to_string(const SymbolTable& syms) const {
  if (!is_array_elem()) return syms.name(var);
  return syms.name(var) + "[" + index->to_string(syms) + "]";
}

StmtPtr Stmt::assign(LValue lhs, ExprPtr rhs, support::SourceLoc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = Kind::kAssign;
  s->loc = loc;
  s->lhs = std::move(lhs);
  s->expr = std::move(rhs);
  return s;
}

StmtPtr Stmt::if_stmt(ExprPtr pred, std::vector<StmtPtr> then_body,
                      std::vector<StmtPtr> else_body, support::SourceLoc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = Kind::kIf;
  s->loc = loc;
  s->expr = std::move(pred);
  s->then_body = std::move(then_body);
  s->else_body = std::move(else_body);
  return s;
}

StmtPtr Stmt::while_stmt(ExprPtr pred, std::vector<StmtPtr> body,
                         support::SourceLoc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = Kind::kWhile;
  s->loc = loc;
  s->expr = std::move(pred);
  s->then_body = std::move(body);
  return s;
}

StmtPtr Stmt::goto_stmt(std::string target, support::SourceLoc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = Kind::kGoto;
  s->loc = loc;
  s->target_true = std::move(target);
  return s;
}

StmtPtr Stmt::cond_goto(ExprPtr pred, std::string if_true,
                        std::string if_false, support::SourceLoc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = Kind::kCondGoto;
  s->loc = loc;
  s->expr = std::move(pred);
  s->target_true = std::move(if_true);
  s->target_false = std::move(if_false);
  return s;
}

StmtPtr Stmt::skip(support::SourceLoc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = Kind::kSkip;
  s->loc = loc;
  return s;
}

namespace {

void print_stmt(std::ostringstream& os, const Stmt& s, const SymbolTable& syms,
                int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  for (const auto& l : s.labels) os << l << ":\n";
  switch (s.kind) {
    case Stmt::Kind::kAssign:
      os << pad << s.lhs.to_string(syms) << " := " << s.expr->to_string(syms)
         << ";\n";
      break;
    case Stmt::Kind::kIf:
      os << pad << "if " << s.expr->to_string(syms) << " {\n";
      for (const auto& t : s.then_body) print_stmt(os, *t, syms, indent + 1);
      if (!s.else_body.empty()) {
        os << pad << "} else {\n";
        for (const auto& t : s.else_body) print_stmt(os, *t, syms, indent + 1);
      }
      os << pad << "}\n";
      break;
    case Stmt::Kind::kWhile:
      os << pad << "while " << s.expr->to_string(syms) << " {\n";
      for (const auto& t : s.then_body) print_stmt(os, *t, syms, indent + 1);
      os << pad << "}\n";
      break;
    case Stmt::Kind::kGoto:
      os << pad << "goto " << s.target_true << ";\n";
      break;
    case Stmt::Kind::kCondGoto:
      os << pad << "if " << s.expr->to_string(syms) << " then goto "
         << s.target_true << " else goto " << s.target_false << ";\n";
      break;
    case Stmt::Kind::kSkip:
      os << pad << "skip;\n";
      break;
  }
}

}  // namespace

std::string Program::to_string() const {
  std::ostringstream os;
  for (VarId v : symbols.all_vars()) {
    const auto& info = symbols.info(v);
    if (info.kind == VarKind::kScalar) {
      os << "var " << info.name << ";\n";
    } else {
      os << "array " << info.name << '[' << info.array_size << "];\n";
    }
  }
  const auto vars = symbols.all_vars();
  for (std::size_t i = 0; i < vars.size(); ++i) {
    for (std::size_t j = i + 1; j < vars.size(); ++j) {
      if (symbols.may_alias(vars[i], vars[j]))
        os << "alias " << symbols.name(vars[i]) << ' '
           << symbols.name(vars[j]) << ";\n";
    }
  }
  for (std::size_t i = 0; i < vars.size(); ++i) {
    for (std::size_t j = i + 1; j < vars.size(); ++j) {
      if (symbols.same_storage(vars[i], vars[j]))
        os << "bind " << symbols.name(vars[i]) << ' '
           << symbols.name(vars[j]) << ";\n";
    }
  }
  for (const auto& s : body) print_stmt(os, *s, symbols, 0);
  return os.str();
}

}  // namespace ctdf::lang
