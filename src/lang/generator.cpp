#include "lang/generator.hpp"

#include <algorithm>
#include <iterator>
#include <string>
#include <vector>

#include "support/assert.hpp"

namespace ctdf::lang {

namespace {

class Gen {
 public:
  Gen(const GeneratorOptions& opt, std::uint64_t seed)
      : opt_(opt), rng_(seed) {}

  Program run() {
    declare_vars();
    // Seed a few variables with constants so programs do not collapse
    // to all-zero stores.
    const int inits = static_cast<int>(rng_.next_in(1, opt_.num_scalars));
    for (int i = 0; i < inits; ++i) {
      emit(Stmt::assign(LValue{scalars_[static_cast<std::size_t>(i)], nullptr},
                        Expr::constant(rng_.next_in(-8, 8))));
    }
    emit_toplevel(opt_.max_toplevel_stmts);
    return std::move(prog_);
  }

 private:
  // --- declarations ---------------------------------------------------------

  void declare_vars() {
    for (int i = 0; i < opt_.num_scalars; ++i) {
      const auto v = prog_.symbols.declare_scalar("s" + std::to_string(i));
      CTDF_ASSERT(v.has_value());
      scalars_.push_back(*v);
    }
    for (int i = 0; i < opt_.num_arrays; ++i) {
      const auto v = prog_.symbols.declare_array("a" + std::to_string(i),
                                                 opt_.array_size);
      CTDF_ASSERT(v.has_value());
      arrays_.push_back(*v);
    }
    if (opt_.allow_aliasing && scalars_.size() >= 2) {
      const std::size_t pairs = 1 + rng_.next_below(scalars_.size());
      for (std::size_t i = 0; i < pairs; ++i) {
        const VarId a = pick(scalars_);
        const VarId b = pick(scalars_);
        if (a == b) continue;
        prog_.symbols.add_alias(a, b);
        // may-alias that sometimes really is the same storage
        if (rng_.chance(1, 2)) prog_.symbols.bind(a, b);
      }
      if (arrays_.size() >= 2 && rng_.chance(1, 2)) {
        const VarId a = pick(arrays_);
        const VarId b = pick(arrays_);
        if (a != b) {
          prog_.symbols.add_alias(a, b);
          if (rng_.chance(1, 2)) prog_.symbols.bind(a, b);
        }
      }
    }
  }

  /// A fresh loop counter: initialized before its loop, incremented once
  /// per iteration, never otherwise written.
  VarId fresh_counter() {
    const auto v =
        prog_.symbols.declare_scalar("k" + std::to_string(counter_seq_++));
    CTDF_ASSERT(v.has_value());
    return *v;
  }

  std::string fresh_label() { return "L" + std::to_string(label_seq_++); }

  // --- expressions ----------------------------------------------------------

  VarId pick(const std::vector<VarId>& pool) {
    CTDF_ASSERT(!pool.empty());
    return pool[rng_.next_below(pool.size())];
  }

  /// Any readable variable: program scalars plus loop counters.
  VarId pick_readable() {
    const auto total = scalars_.size() + counters_.size();
    const auto i = rng_.next_below(total);
    return i < scalars_.size() ? scalars_[i] : counters_[i - scalars_.size()];
  }

  ExprPtr gen_expr(int depth) {
    const auto roll = rng_.next_below(100);
    if (depth <= 0 || roll < 25) {
      return Expr::constant(rng_.next_in(-10, 10));
    }
    if (roll < 55) {
      return Expr::variable(pick_readable());
    }
    if (roll < 62 && !arrays_.empty()) {
      return Expr::array_ref(pick(arrays_), gen_expr(depth - 1));
    }
    if (roll < 70) {
      return Expr::unary(rng_.chance(1, 2) ? UnOp::kNeg : UnOp::kNot,
                         gen_expr(depth - 1));
    }
    static constexpr BinOp kOps[] = {
        BinOp::kAdd, BinOp::kSub, BinOp::kMul, BinOp::kDiv, BinOp::kMod,
        BinOp::kEq,  BinOp::kNe,  BinOp::kLt,  BinOp::kLe,  BinOp::kGt,
        BinOp::kGe,  BinOp::kAnd, BinOp::kOr,
    };
    const BinOp op = kOps[rng_.next_below(std::size(kOps))];
    return Expr::binary(op, gen_expr(depth - 1), gen_expr(depth - 1));
  }

  LValue gen_lvalue() {
    LValue lv;
    if (!arrays_.empty() && rng_.chance(1, 4)) {
      lv.var = pick(arrays_);
      lv.index = gen_expr(1);
    } else {
      lv.var = pick(scalars_);
    }
    return lv;
  }

  // --- structured statements (inside blocks) --------------------------------

  StmtPtr gen_assign() {
    return Stmt::assign(gen_lvalue(), gen_expr(opt_.max_expr_depth));
  }

  void gen_block(std::vector<StmtPtr>& out, int depth, int budget) {
    const int n = 1 + static_cast<int>(
                          rng_.next_below(static_cast<std::uint64_t>(
                              std::max(1, std::min(budget, opt_.max_block_stmts)))));
    for (int i = 0; i < n; ++i) out.push_back(gen_structured(depth, budget / n));
  }

  StmtPtr gen_structured(int depth, int budget) {
    const auto roll = rng_.next_below(100);
    if (depth > 0 && budget > 1 &&
        roll < static_cast<std::uint64_t>(opt_.pct_conditional)) {
      std::vector<StmtPtr> then_body, else_body;
      gen_block(then_body, depth - 1, budget - 1);
      if (rng_.chance(1, 2)) gen_block(else_body, depth - 1, budget - 1);
      return Stmt::if_stmt(gen_expr(opt_.max_expr_depth), std::move(then_body),
                           std::move(else_body));
    }
    if (depth > 0 && budget > 1 && opt_.allow_structured_loops &&
        roll < static_cast<std::uint64_t>(opt_.pct_conditional + opt_.pct_loop)) {
      return gen_structured_loop(depth, budget);
    }
    return gen_assign();
  }

  /// A while loop guaranteed to terminate: fresh counter, `k < trip`
  /// predicate, single increment appended to the body. The counter init
  /// must precede the loop; since this function returns one statement,
  /// both are wrapped in an `if (1) { k := 0; while ... }` block.
  StmtPtr gen_structured_loop(int depth, int budget) {
    const VarId k = fresh_counter();
    counters_.push_back(k);
    const auto trip = rng_.next_in(0, opt_.max_loop_trip);

    std::vector<StmtPtr> body;
    gen_block(body, depth - 1, budget - 1);
    body.push_back(Stmt::assign(LValue{k, nullptr},
                                Expr::binary(BinOp::kAdd, Expr::variable(k),
                                             Expr::constant(1))));

    ExprPtr pred = Expr::binary(BinOp::kLt, Expr::variable(k),
                                Expr::constant(trip));
    if (rng_.chance(1, 4)) {
      // Occasionally conjoin a data-dependent condition; the counter
      // bound still guarantees termination.
      pred = Expr::binary(BinOp::kAnd, std::move(pred),
                          gen_expr(opt_.max_expr_depth));
    }

    std::vector<StmtPtr> wrapper;
    wrapper.push_back(Stmt::assign(LValue{k, nullptr}, Expr::constant(0)));
    wrapper.push_back(Stmt::while_stmt(std::move(pred), std::move(body)));
    return Stmt::if_stmt(Expr::constant(1), std::move(wrapper), {});
  }

  // --- top level (may be unstructured) --------------------------------------

  void emit(StmtPtr s) { prog_.body.push_back(std::move(s)); }

  /// Attach a label to the next statement emitted (or to a labeled skip
  /// at the end if nothing follows). Collected and flushed by emit_labeled.
  void emit_labeled(std::string label, StmtPtr s) {
    s->labels.push_back(std::move(label));
    emit(std::move(s));
  }

  void emit_toplevel(int budget) {
    while (budget > 0) {
      const auto roll = rng_.next_below(100);
      if (opt_.allow_unstructured && budget >= 4 && roll < 15) {
        budget -= emit_forward_skip(budget);
      } else if (opt_.allow_unstructured && budget >= 5 && roll < 30) {
        budget -= emit_unstructured_loop(budget);
      } else if (opt_.allow_unstructured && opt_.allow_irreducible &&
                 budget >= 7 && roll < 38) {
        budget -= emit_irreducible_gadget();
      } else {
        emit(gen_structured(opt_.max_depth, std::min(budget, 6)));
        budget -= 1;
      }
    }
  }

  /// `if e then goto Lskip else goto Lcont; Lcont: <stmts>; Lskip: skip;`
  int emit_forward_skip(int budget) {
    const std::string skip_label = fresh_label();
    const std::string cont_label = fresh_label();
    emit(Stmt::cond_goto(gen_expr(opt_.max_expr_depth), skip_label,
                         cont_label));
    const int inner = 1 + static_cast<int>(rng_.next_below(
                              static_cast<std::uint64_t>(std::min(3, budget - 3))));
    emit_labeled(cont_label, gen_structured(opt_.max_depth, 3));
    for (int i = 1; i < inner; ++i)
      emit(gen_structured(opt_.max_depth, 3));
    emit_labeled(skip_label, Stmt::skip());
    return inner + 2;
  }

  /// `k := 0; Lh: <stmts>; [early data-dependent exit;] k := k + 1;
  ///  if k < T then goto Lh else goto Lx; Lx: skip;`
  /// The optional early exit makes the loop multi-exit, exercising
  /// multiple loop-exit nodes and exit-direction switch routing.
  int emit_unstructured_loop(int budget) {
    const VarId k = fresh_counter();
    counters_.push_back(k);
    const std::string head = fresh_label();
    const std::string exit = fresh_label();
    emit(Stmt::assign(LValue{k, nullptr}, Expr::constant(0)));
    const int inner = 1 + static_cast<int>(rng_.next_below(
                              static_cast<std::uint64_t>(std::min(3, budget - 4))));
    emit_labeled(head, gen_structured(opt_.max_depth, 3));
    int extra = 0;
    if (rng_.chance(2, 5)) {
      // Early exit: a second way out of the cycle (always forward, so
      // termination is untouched).
      const std::string cont = fresh_label();
      emit(Stmt::cond_goto(gen_expr(opt_.max_expr_depth), exit, cont));
      emit_labeled(cont, gen_structured(opt_.max_depth, 3));
      extra = 2;
    }
    for (int i = 1; i < inner; ++i)
      emit(gen_structured(opt_.max_depth, 3));
    emit(Stmt::assign(LValue{k, nullptr},
                      Expr::binary(BinOp::kAdd, Expr::variable(k),
                                   Expr::constant(1))));
    emit(Stmt::cond_goto(
        Expr::binary(BinOp::kLt, Expr::variable(k),
                     Expr::constant(rng_.next_in(1, opt_.max_loop_trip))),
        head, exit));
    emit_labeled(exit, Stmt::skip());
    return inner + extra + 4;
  }

  /// The two-entry (irreducible) loop: branch into the middle of a
  /// counted loop. The counter is incremented on every path through the
  /// cycle and never reset inside it, so the gadget terminates.
  int emit_irreducible_gadget() {
    const VarId k = fresh_counter();
    counters_.push_back(k);
    const std::string l1 = fresh_label();
    const std::string l2 = fresh_label();
    const std::string exit = fresh_label();
    emit(Stmt::assign(LValue{k, nullptr}, Expr::constant(0)));
    emit(Stmt::cond_goto(gen_expr(opt_.max_expr_depth), l2, l1));
    emit_labeled(l1, gen_assign());
    emit_labeled(l2, gen_assign());
    emit(Stmt::assign(LValue{k, nullptr},
                      Expr::binary(BinOp::kAdd, Expr::variable(k),
                                   Expr::constant(1))));
    emit(Stmt::cond_goto(
        Expr::binary(BinOp::kLt, Expr::variable(k),
                     Expr::constant(rng_.next_in(1, opt_.max_loop_trip))),
        l1, exit));
    emit_labeled(exit, Stmt::skip());
    return 7;
  }

  GeneratorOptions opt_;
  support::SplitMix64 rng_;
  Program prog_;
  std::vector<VarId> scalars_;
  std::vector<VarId> arrays_;
  std::vector<VarId> counters_;
  int counter_seq_ = 0;
  int label_seq_ = 0;
};

}  // namespace

Program generate_program(const GeneratorOptions& options, std::uint64_t seed) {
  return Gen{options, seed}.run();
}

}  // namespace ctdf::lang
