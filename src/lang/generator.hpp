// Random program generator for property-based testing.
//
// Every generated program terminates by construction:
//  * while-loops and unstructured backward loops always iterate on a
//    dedicated counter variable that is initialized before the loop,
//    incremented exactly once per iteration, and never otherwise
//    assigned inside the loop (reads are fine);
//  * all gotos other than those loop back-edges jump strictly forward.
//
// The generator can emit structured-only programs, unstructured
// (goto-based) programs, aliased variables, arrays, and — optionally —
// the classic irreducible two-entry loop pattern, so the property suite
// exercises interval node splitting too.
#pragma once

#include <cstdint>

#include "lang/ast.hpp"
#include "support/rng.hpp"

namespace ctdf::lang {

struct GeneratorOptions {
  int num_scalars = 4;          ///< generated as s0..s{n-1}
  int num_arrays = 0;           ///< generated as a0..; 0 disables arrays
  std::int64_t array_size = 8;
  int max_toplevel_stmts = 12;
  int max_block_stmts = 4;
  int max_depth = 2;            ///< structured nesting depth
  int max_expr_depth = 3;
  int max_loop_trip = 6;
  bool allow_structured_loops = true;
  bool allow_unstructured = false;   ///< forward cond-gotos + backward loops
  bool allow_irreducible = false;    ///< requires allow_unstructured
  bool allow_aliasing = false;       ///< random alias/bind pairs on scalars
  /// Probability (percent) that a generated statement is a conditional.
  int pct_conditional = 30;
  /// Probability (percent) that a generated statement is a loop.
  int pct_loop = 15;
};

/// Generates a random, always-terminating program. Deterministic in
/// (options, seed).
[[nodiscard]] Program generate_program(const GeneratorOptions& options,
                                       std::uint64_t seed);

}  // namespace ctdf::lang
