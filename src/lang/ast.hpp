// Abstract syntax for the ctdf source language.
//
// The language is deliberately the one of the paper's Section 2.1: a
// program is a sequence of (optionally labeled) statements over scalar
// and array variables, with assignments, unstructured two-way forks
// (`if e then goto l1 else goto l2`), unconditional gotos, and the
// structured `if {...} else {...}` / `while {...}` sugar that lowers to
// the same CFG node kinds. Labels and gotos may appear only at the top
// level (the parser enforces this), which keeps CFG lowering and the
// reference interpreter straightforward without losing any of the
// unstructured-flow generality the paper cares about.
//
// Arithmetic is over int64 with total semantics: division/modulo by
// zero yield 0 (documented, deliberate — it keeps randomly generated
// programs total so schema-equivalence property tests never trap).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lang/symbols.hpp"
#include "support/diagnostics.hpp"

namespace ctdf::lang {

enum class BinOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

enum class UnOp : std::uint8_t { kNeg, kNot };

[[nodiscard]] const char* to_string(BinOp op);
[[nodiscard]] const char* to_string(UnOp op);

/// Total int64 evaluation of a binary operator (div/mod by 0 == 0;
/// comparisons/logicals yield 0/1). Shared by the interpreter, the
/// constant folder, and the machine ALU so all three agree bit-for-bit.
[[nodiscard]] std::int64_t eval_binop(BinOp op, std::int64_t a,
                                      std::int64_t b);
[[nodiscard]] std::int64_t eval_unop(UnOp op, std::int64_t a);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : std::uint8_t { kConst, kVar, kArrayRef, kBinary, kUnary };

  Kind kind;
  support::SourceLoc loc;

  std::int64_t value = 0;       ///< kConst
  VarId var;                    ///< kVar / kArrayRef (the array base)
  BinOp bop = BinOp::kAdd;      ///< kBinary
  UnOp uop = UnOp::kNeg;        ///< kUnary
  ExprPtr lhs;                  ///< kBinary lhs / kUnary operand / kArrayRef index
  ExprPtr rhs;                  ///< kBinary rhs

  static ExprPtr constant(std::int64_t v, support::SourceLoc loc = {});
  static ExprPtr variable(VarId v, support::SourceLoc loc = {});
  static ExprPtr array_ref(VarId base, ExprPtr index,
                           support::SourceLoc loc = {});
  static ExprPtr binary(BinOp op, ExprPtr l, ExprPtr r,
                        support::SourceLoc loc = {});
  static ExprPtr unary(UnOp op, ExprPtr operand, support::SourceLoc loc = {});

  [[nodiscard]] ExprPtr clone() const;

  /// Every variable referenced (base variables of array refs included),
  /// deduplicated, appended to `out`.
  void collect_vars(std::vector<VarId>& out) const;

  [[nodiscard]] std::string to_string(const SymbolTable& syms) const;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Destination of an assignment: a scalar or an indexed array element.
struct LValue {
  VarId var;
  ExprPtr index;  ///< null for scalars

  [[nodiscard]] bool is_array_elem() const { return index != nullptr; }
  [[nodiscard]] LValue clone() const;
  [[nodiscard]] std::string to_string(const SymbolTable& syms) const;
};

struct Stmt {
  enum class Kind : std::uint8_t {
    kAssign,    ///< lhs := expr
    kIf,        ///< structured if expr { then } [ else { els } ]
    kWhile,     ///< structured while expr { body }
    kGoto,      ///< goto label
    kCondGoto,  ///< if expr then goto label_true else goto label_false
    kSkip,      ///< no-op
  };

  Kind kind;
  support::SourceLoc loc;

  /// Labels attached to this statement (top-level statements only).
  std::vector<std::string> labels;

  LValue lhs;          ///< kAssign
  ExprPtr expr;        ///< kAssign rhs / kIf / kWhile / kCondGoto predicate
  std::vector<StmtPtr> then_body;  ///< kIf then / kWhile body
  std::vector<StmtPtr> else_body;  ///< kIf else
  std::string target_true;         ///< kGoto / kCondGoto
  std::string target_false;        ///< kCondGoto

  static StmtPtr assign(LValue lhs, ExprPtr rhs, support::SourceLoc loc = {});
  static StmtPtr if_stmt(ExprPtr pred, std::vector<StmtPtr> then_body,
                         std::vector<StmtPtr> else_body,
                         support::SourceLoc loc = {});
  static StmtPtr while_stmt(ExprPtr pred, std::vector<StmtPtr> body,
                            support::SourceLoc loc = {});
  static StmtPtr goto_stmt(std::string target, support::SourceLoc loc = {});
  static StmtPtr cond_goto(ExprPtr pred, std::string if_true,
                           std::string if_false, support::SourceLoc loc = {});
  static StmtPtr skip(support::SourceLoc loc = {});
};

/// A whole translation unit: declarations plus the top-level statement
/// sequence. Execution starts at the first statement and ends by falling
/// off the end or via `goto end` (the label `end` is predefined).
struct Program {
  SymbolTable symbols;
  std::vector<StmtPtr> body;

  /// Pretty-print back to (parseable) source form.
  [[nodiscard]] std::string to_string() const;
};

}  // namespace ctdf::lang
