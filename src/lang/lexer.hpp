// Hand-written lexer for the ctdf source language.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/diagnostics.hpp"

namespace ctdf::lang {

enum class TokKind : std::uint8_t {
  kEof,
  kIdent,
  kInt,
  // Keywords.
  kVar, kArray, kAlias, kBind, kIf, kThen, kElse, kWhile, kGoto, kSkip,
  // Punctuation / operators.
  kAssign,     // :=
  kColon, kSemi, kComma,
  kLBracket, kRBracket, kLBrace, kRBrace, kLParen, kRParen,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEqEq, kNe, kLt, kLe, kGt, kGe, kAndAnd, kOrOr, kBang,
};

[[nodiscard]] const char* to_string(TokKind k);

struct Token {
  TokKind kind = TokKind::kEof;
  support::SourceLoc loc;
  std::string_view text;    ///< points into the original source
  std::int64_t int_value = 0;  ///< valid iff kind == kInt
};

/// Tokenizes `source`. Lexical errors are reported to `diags`; an error
/// token position is skipped so lexing always terminates with kEof.
/// The returned tokens reference `source`, which must outlive them.
[[nodiscard]] std::vector<Token> lex(std::string_view source,
                                     support::DiagnosticEngine& diags);

}  // namespace ctdf::lang
