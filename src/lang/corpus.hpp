// Named example programs from the paper, used by tests, examples, and
// the benchmark harnesses.
#pragma once

#include <string>
#include <vector>

#include "lang/ast.hpp"

namespace ctdf::lang::corpus {

struct NamedProgram {
  std::string name;
  std::string source;
};

/// The paper's running example (Fig. 1):
///   l: y := x + 1; x := x + 1; if x < 5 then goto l else goto end
[[nodiscard]] std::string running_example_source();
[[nodiscard]] Program running_example();

/// Fig. 9: a conditional that does not reference x, sandwiched between
/// two assignments to x — the access_x switch is redundant.
[[nodiscard]] std::string fig9_source();
[[nodiscard]] Program fig9();

/// A parameterized version of Fig. 9 with `depth` nested conditionals
/// (none referencing x) between the two x assignments.
[[nodiscard]] std::string nested_bypass_source(int depth);

/// Section 5's FORTRAN SUBROUTINE F(X,Y,Z) alias structure
/// ([X]={X,Z}, [Y]={Y,Z}, [Z]={X,Y,Z}), with a body exercising all
/// three names.
[[nodiscard]] std::string fortran_alias_source();
[[nodiscard]] Program fortran_alias();

/// Section 6.3's array loop:
///   start: i := i + 1; x[i] := 1; if i < 10 then goto start else end
[[nodiscard]] std::string array_loop_source(int trip_count = 10);
[[nodiscard]] Program array_loop(int trip_count = 10);

/// A straight-line program with `n` independent variables each updated
/// `updates` times — exercises Schema 2's cross-statement parallelism.
[[nodiscard]] std::string independent_chains_source(int n, int updates);

/// A straight-line program that reads many variables into one
/// accumulator — exercises read parallelization (Sec. 6.2).
[[nodiscard]] std::string read_heavy_source(int reads);

/// An irreducible CFG (branch into the middle of a loop) with bounded
/// trip count — exercises interval node splitting.
[[nodiscard]] std::string irreducible_source();

/// A doubly nested loop computing a small convolution-like recurrence —
/// exercises nested interval decomposition.
[[nodiscard]] std::string nested_loops_source(int outer, int inner);

/// A `trip`-iteration loop whose body is one dependent chain of `chain`
/// literal-operand arithmetic ops — macro-op fusion's best case (every
/// link is a single-consumer pure op, so the chain collapses to one
/// firing per iteration). The `% 127` links keep values bounded at any
/// trip count.
[[nodiscard]] std::string chain_loop_source(int trip, int chain);

/// All of the above (with small default parameters) as a test corpus.
[[nodiscard]] std::vector<NamedProgram> all();

}  // namespace ctdf::lang::corpus
