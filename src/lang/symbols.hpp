// Symbol table: variables, arrays, alias structure, storage bindings.
//
// The paper (Section 5) distinguishes the compile-time *may-alias*
// relation (Definition 6: reflexive, symmetric, NOT transitive) from the
// run-time fact that two names denote the same storage location (as
// created by FORTRAN reference-parameter passing). We model both:
//
//  * `alias x y`  — declares x ~ y. The translator must assume x and y
//                   may share a location.
//  * `bind x y`   — declares that x and y actually DO share a location
//                   at run time. Binding is an equivalence relation
//                   (union-find); every bind pair is implicitly added to
//                   the alias relation so that may-alias always
//                   over-approximates must-alias.
//
// The interpreter and the machine memory layout honor bindings; the
// translation schemas only ever see the alias relation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/ids.hpp"
#include "support/index_map.hpp"

namespace ctdf::lang {

struct VarTag;
using VarId = support::Id<VarTag>;

enum class VarKind : std::uint8_t { kScalar, kArray };

struct VarInfo {
  std::string name;
  VarKind kind = VarKind::kScalar;
  std::int64_t array_size = 0;  ///< valid iff kind == kArray
};

class SymbolTable {
 public:
  /// Declares a new symbol; returns nullopt if the name already exists.
  std::optional<VarId> declare_scalar(std::string_view name);
  std::optional<VarId> declare_array(std::string_view name,
                                     std::int64_t size);

  [[nodiscard]] std::optional<VarId> lookup(std::string_view name) const;

  [[nodiscard]] std::size_t size() const { return vars_.size(); }
  [[nodiscard]] const VarInfo& info(VarId v) const { return vars_[v]; }
  [[nodiscard]] const std::string& name(VarId v) const {
    return vars_[v].name;
  }
  [[nodiscard]] bool is_array(VarId v) const {
    return vars_[v].kind == VarKind::kArray;
  }

  /// Declare x ~ y (may-alias). Idempotent; symmetric closure is
  /// maintained internally. Self-aliasing is implicit and not stored.
  void add_alias(VarId x, VarId y);

  /// Declare that x and y share storage. Also records x ~ y.
  /// Returns false (and does nothing) if the two have incompatible
  /// kinds/sizes.
  bool bind(VarId x, VarId y);

  /// May x and y denote the same location? Reflexive.
  [[nodiscard]] bool may_alias(VarId x, VarId y) const;

  /// The alias class [x] = { y : y ~ x }, including x itself, ascending.
  [[nodiscard]] std::vector<VarId> alias_class(VarId x) const;

  /// True if some alias pair (beyond the implicit reflexive ones) exists.
  [[nodiscard]] bool has_aliasing() const { return has_alias_pairs_; }

  /// Representative of the storage-binding equivalence class.
  [[nodiscard]] VarId bind_root(VarId x) const;

  /// True iff x and y are bound to the same storage.
  [[nodiscard]] bool same_storage(VarId x, VarId y) const {
    return bind_root(x) == bind_root(y);
  }

  /// All declared variable ids, ascending.
  [[nodiscard]] std::vector<VarId> all_vars() const;

 private:
  std::optional<VarId> declare(std::string_view name, VarKind kind,
                               std::int64_t size);

  support::IndexMap<VarId, VarInfo> vars_;
  std::unordered_map<std::string, VarId> by_name_;
  // Alias relation as per-variable adjacency bit rows would couple us to
  // a fixed size at declaration time; a flat pair set keeps it simple.
  std::vector<std::vector<bool>> alias_;  // lower-triangular lookup
  mutable std::vector<VarId::underlying_type> bind_parent_;
  bool has_alias_pairs_ = false;

  [[nodiscard]] bool alias_bit(std::size_t a, std::size_t b) const;
  void set_alias_bit(std::size_t a, std::size_t b);
  VarId::underlying_type find_root(VarId::underlying_type i) const;
};

/// Assigns every storage-binding class a contiguous cell range. Scalars
/// occupy one cell; arrays occupy `array_size` cells.
class StorageLayout {
 public:
  explicit StorageLayout(const SymbolTable& syms);

  [[nodiscard]] std::size_t total_cells() const { return total_; }
  /// Base cell of variable v's storage.
  [[nodiscard]] std::size_t base(VarId v) const { return base_[v]; }
  /// Number of cells of variable v (1 for scalars).
  [[nodiscard]] std::size_t extent(VarId v) const { return extent_[v]; }

 private:
  support::IndexMap<VarId, std::size_t> base_;
  support::IndexMap<VarId, std::size_t> extent_;
  std::size_t total_ = 0;
};

}  // namespace ctdf::lang
