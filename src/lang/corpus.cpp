#include "lang/corpus.hpp"

#include <sstream>

#include "lang/parser.hpp"

namespace ctdf::lang::corpus {

std::string running_example_source() {
  return R"(// Fig. 1, the paper's running example.
var x, y;
l:
  y := x + 1;
  x := x + 1;
  if x < 5 then goto l else goto end;
)";
}

Program running_example() { return parse_or_throw(running_example_source()); }

std::string fig9_source() {
  return R"(// Fig. 9: x is not referenced inside the conditional, so the
// access_x switch inserted by Schema 2 is redundant.
var x, y, w;
  x := x + 1;
  if w == 0 then goto t else goto f;
t:
  y := 1;
  goto join;
f:
  y := 2;
  goto join;
join:
  x := 0;
)";
}

Program fig9() { return parse_or_throw(fig9_source()); }

std::string nested_bypass_source(int depth) {
  // The predicate value w becomes available only after a chain of
  // memory round-trips, and every nesting level is on the executed path
  // (w = 35 makes w >= i true for all i < 35). Under naive Schema 2 the
  // access_x token crosses one switch per level — each waiting on w —
  // before x := 0 may run; under the Section 4 construction it bypasses
  // the whole region (Fig. 9's point).
  std::ostringstream os;
  os << "var x, y, w;\n";
  os << "  x := x + 1;\n";
  os << "  w := w + 7;\n  w := w * 5;\n";
  for (int i = 0; i < depth; ++i)
    os << "  if w >= " << i << " {\n    y := y + " << i << ";\n";
  os << "    y := y * 2;\n";
  for (int i = 0; i < depth; ++i) os << "  }\n";
  os << "  x := 0;\n";
  return os.str();
}

std::string fortran_alias_source() {
  return R"(// Section 5: SUBROUTINE F(X, Y, Z) called as F(A,B,A) and
// F(C,D,D): X~Z and Y~Z but X and Y are not aliased. `bind x z`
// reflects the first call site's actual storage identification.
// u and v are unaliased locals: a fine-grained cover lets their
// updates overlap the aliased traffic; the unified cover serializes
// everything behind one token.
var x, y, z, u, v;
alias x z;
alias y z;
bind x z;
  x := 10;
  u := u + 1;
  y := x + 5;
  v := v + 2;
  z := z + y;
  u := u * 3;
  x := z * 2;
  v := v + u;
)";
}

Program fortran_alias() { return parse_or_throw(fortran_alias_source()); }

std::string array_loop_source(int trip_count) {
  std::ostringstream os;
  os << "// Section 6.3: successive stores to distinct elements of x.\n";
  os << "var i;\narray x[" << trip_count + 1 << "];\n";
  os << "loop:\n  i := i + 1;\n  x[i] := 1;\n  if i < " << trip_count
     << " then goto loop else goto end;\n";
  return os.str();
}

Program array_loop(int trip_count) {
  return parse_or_throw(array_loop_source(trip_count));
}

std::string independent_chains_source(int n, int updates) {
  std::ostringstream os;
  os << "var";
  for (int v = 0; v < n; ++v) os << (v ? ", v" : " v") << v;
  os << ";\n";
  for (int u = 0; u < updates; ++u)
    for (int v = 0; v < n; ++v)
      os << "  v" << v << " := v" << v << " + " << (u + v + 1) << ";\n";
  return os.str();
}

std::string read_heavy_source(int reads) {
  if (reads < 1) reads = 1;
  std::ostringstream os;
  os << "var acc";
  for (int v = 0; v < reads; ++v) os << ", r" << v;
  os << ";\n";
  for (int v = 0; v < reads; ++v)
    os << "  r" << v << " := " << (v * 7 + 3) << ";\n";
  // A single wide expression reading every r_v.
  os << "  acc := r0";
  for (int v = 1; v < reads; ++v) os << " + r" << v;
  os << ";\n";
  return os.str();
}

std::string irreducible_source() {
  return R"(// Irreducible flow: the branch jumps into the middle of the
// loop (label l2), so the cycle {l1, l2, test} has two entries.
var a, b, k, e;
  e := 1;
  k := 0;
  if e == 1 then goto l2 else goto l1;
l1:
  a := a + 1;
l2:
  b := b + 1;
  k := k + 1;
  if k < 5 then goto l1 else goto end;
)";
}

std::string nested_loops_source(int outer, int inner) {
  std::ostringstream os;
  os << "var i, j, s;\n";
  os << "  i := 0;\n";
  os << "  while i < " << outer << " {\n";
  os << "    j := 0;\n";
  os << "    while j < " << inner << " {\n";
  os << "      s := s + i * j + 1;\n";
  os << "      j := j + 1;\n";
  os << "    }\n";
  os << "    i := i + 1;\n";
  os << "  }\n";
  return os.str();
}

std::string chain_loop_source(int trip, int chain) {
  std::ostringstream os;
  os << "var i, x;\n";
  os << "  i := 0;\n  x := 1;\n";
  os << "  while i < " << trip << " {\n    x := ";
  for (int c = 0; c < chain; ++c) os << '(';
  os << 'x';
  for (int c = 0; c < chain; ++c) {
    switch (c % 3) {
      case 0: os << " * 3)"; break;
      case 1: os << " + 1)"; break;
      default: os << " % 127)"; break;
    }
  }
  os << ";\n    i := i + 1;\n  }\n";
  return os.str();
}

std::vector<NamedProgram> all() {
  return {
      {"running_example", running_example_source()},
      {"fig9", fig9_source()},
      {"nested_bypass_4", nested_bypass_source(4)},
      {"fortran_alias", fortran_alias_source()},
      {"array_loop_10", array_loop_source(10)},
      {"independent_chains_4x3", independent_chains_source(4, 3)},
      {"read_heavy_8", read_heavy_source(8)},
      {"irreducible", irreducible_source()},
      {"nested_loops_3x4", nested_loops_source(3, 4)},
      {"chain_loop_6x8", chain_loop_source(6, 8)},
  };
}

}  // namespace ctdf::lang::corpus
