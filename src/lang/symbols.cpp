#include "lang/symbols.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ctdf::lang {

std::optional<VarId> SymbolTable::declare(std::string_view name, VarKind kind,
                                          std::int64_t size) {
  std::string key{name};
  if (by_name_.contains(key)) return std::nullopt;
  const VarId id{vars_.size()};
  vars_.ensure(id);
  vars_[id] = VarInfo{std::move(key), kind, size};
  by_name_.emplace(vars_[id].name, id);
  alias_.emplace_back(vars_.size(), false);  // row i has i+1 entries
  bind_parent_.push_back(id.value());
  return id;
}

std::optional<VarId> SymbolTable::declare_scalar(std::string_view name) {
  return declare(name, VarKind::kScalar, 0);
}

std::optional<VarId> SymbolTable::declare_array(std::string_view name,
                                                std::int64_t size) {
  CTDF_ASSERT(size > 0);
  return declare(name, VarKind::kArray, size);
}

std::optional<VarId> SymbolTable::lookup(std::string_view name) const {
  auto it = by_name_.find(std::string{name});
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

bool SymbolTable::alias_bit(std::size_t a, std::size_t b) const {
  if (a < b) std::swap(a, b);
  return alias_[a][b];
}

void SymbolTable::set_alias_bit(std::size_t a, std::size_t b) {
  if (a < b) std::swap(a, b);
  alias_[a][b] = true;
}

void SymbolTable::add_alias(VarId x, VarId y) {
  if (x == y) return;  // reflexivity is implicit
  set_alias_bit(x.index(), y.index());
  has_alias_pairs_ = true;
}

VarId::underlying_type SymbolTable::find_root(
    VarId::underlying_type i) const {
  while (bind_parent_[i] != i) {
    bind_parent_[i] = bind_parent_[bind_parent_[i]];  // path halving
    i = bind_parent_[i];
  }
  return i;
}

bool SymbolTable::bind(VarId x, VarId y) {
  const VarInfo& a = vars_[x];
  const VarInfo& b = vars_[y];
  if (a.kind != b.kind) return false;
  if (a.kind == VarKind::kArray && a.array_size != b.array_size) return false;
  add_alias(x, y);
  const auto rx = find_root(x.value());
  const auto ry = find_root(y.value());
  if (rx != ry) bind_parent_[ry] = rx;
  return true;
}

bool SymbolTable::may_alias(VarId x, VarId y) const {
  if (x == y) return true;
  if (alias_bit(x.index(), y.index())) return true;
  // Bound storage is the strongest form of aliasing, and binding is
  // transitive (union-find) while the declared ~ bits are only
  // pairwise: bind x,y; bind y,z leaves no x~z bit even though x and z
  // share a cell. The translator keys access ordering on this
  // predicate, so missing that pair would leave same-cell accesses
  // unordered.
  return same_storage(x, y);
}

std::vector<VarId> SymbolTable::alias_class(VarId x) const {
  std::vector<VarId> out;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    const VarId v{i};
    if (may_alias(x, v)) out.push_back(v);
  }
  return out;
}

VarId SymbolTable::bind_root(VarId x) const { return VarId{find_root(x.value())}; }

std::vector<VarId> SymbolTable::all_vars() const {
  std::vector<VarId> out;
  out.reserve(vars_.size());
  for (std::size_t i = 0; i < vars_.size(); ++i) out.emplace_back(i);
  return out;
}

StorageLayout::StorageLayout(const SymbolTable& syms) {
  const auto vars = syms.all_vars();
  base_.resize(vars.size(), 0);
  extent_.resize(vars.size(), 0);
  // Allocate storage per binding root, then point members at their root.
  support::IndexMap<VarId, std::size_t> root_base(vars.size(), SIZE_MAX);
  for (VarId v : vars) {
    const VarId root = syms.bind_root(v);
    const std::size_t cells =
        syms.is_array(root)
            ? static_cast<std::size_t>(syms.info(root).array_size)
            : 1;
    if (root_base[root] == SIZE_MAX) {
      root_base[root] = total_;
      total_ += cells;
    }
    base_[v] = root_base[root];
    extent_[v] = cells;
  }
}

}  // namespace ctdf::lang
