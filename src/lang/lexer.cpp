#include "lang/lexer.hpp"

#include <cctype>
#include <unordered_map>

#include "support/assert.hpp"

namespace ctdf::lang {

const char* to_string(TokKind k) {
  switch (k) {
    case TokKind::kEof: return "<eof>";
    case TokKind::kIdent: return "identifier";
    case TokKind::kInt: return "integer";
    case TokKind::kVar: return "'var'";
    case TokKind::kArray: return "'array'";
    case TokKind::kAlias: return "'alias'";
    case TokKind::kBind: return "'bind'";
    case TokKind::kIf: return "'if'";
    case TokKind::kThen: return "'then'";
    case TokKind::kElse: return "'else'";
    case TokKind::kWhile: return "'while'";
    case TokKind::kGoto: return "'goto'";
    case TokKind::kSkip: return "'skip'";
    case TokKind::kAssign: return "':='";
    case TokKind::kColon: return "':'";
    case TokKind::kSemi: return "';'";
    case TokKind::kComma: return "','";
    case TokKind::kLBracket: return "'['";
    case TokKind::kRBracket: return "']'";
    case TokKind::kLBrace: return "'{'";
    case TokKind::kRBrace: return "'}'";
    case TokKind::kLParen: return "'('";
    case TokKind::kRParen: return "')'";
    case TokKind::kPlus: return "'+'";
    case TokKind::kMinus: return "'-'";
    case TokKind::kStar: return "'*'";
    case TokKind::kSlash: return "'/'";
    case TokKind::kPercent: return "'%'";
    case TokKind::kEqEq: return "'=='";
    case TokKind::kNe: return "'!='";
    case TokKind::kLt: return "'<'";
    case TokKind::kLe: return "'<='";
    case TokKind::kGt: return "'>'";
    case TokKind::kGe: return "'>='";
    case TokKind::kAndAnd: return "'&&'";
    case TokKind::kOrOr: return "'||'";
    case TokKind::kBang: return "'!'";
  }
  CTDF_UNREACHABLE("bad TokKind");
}

namespace {

const std::unordered_map<std::string_view, TokKind> kKeywords = {
    {"var", TokKind::kVar},     {"array", TokKind::kArray},
    {"alias", TokKind::kAlias}, {"bind", TokKind::kBind},
    {"if", TokKind::kIf},       {"then", TokKind::kThen},
    {"else", TokKind::kElse},   {"while", TokKind::kWhile},
    {"goto", TokKind::kGoto},   {"skip", TokKind::kSkip},
};

class Cursor {
 public:
  Cursor(std::string_view src, support::DiagnosticEngine& diags)
      : src_(src), diags_(diags) {}

  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  [[nodiscard]] support::SourceLoc loc() const { return {line_, col_}; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::string_view slice(std::size_t from) const {
    return src_.substr(from, pos_ - from);
  }

  void error(support::SourceLoc l, std::string msg) {
    diags_.error(l, std::move(msg));
  }

 private:
  std::string_view src_;
  support::DiagnosticEngine& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
};

void skip_trivia(Cursor& c) {
  for (;;) {
    while (!c.at_end() && std::isspace(static_cast<unsigned char>(c.peek())))
      c.advance();
    // Line comments: `//` and `#`.
    if (c.peek() == '/' && c.peek(1) == '/') {
      while (!c.at_end() && c.peek() != '\n') c.advance();
      continue;
    }
    if (c.peek() == '#') {
      while (!c.at_end() && c.peek() != '\n') c.advance();
      continue;
    }
    break;
  }
}

}  // namespace

std::vector<Token> lex(std::string_view source,
                       support::DiagnosticEngine& diags) {
  std::vector<Token> out;
  Cursor c{source, diags};

  auto push = [&](TokKind k, support::SourceLoc loc, std::string_view text,
                  std::int64_t value = 0) {
    out.push_back(Token{k, loc, text, value});
  };

  for (;;) {
    skip_trivia(c);
    const auto loc = c.loc();
    const auto start = c.pos();
    if (c.at_end()) {
      push(TokKind::kEof, loc, "");
      break;
    }
    const char ch = c.advance();
    if (std::isalpha(static_cast<unsigned char>(ch)) || ch == '_') {
      while (std::isalnum(static_cast<unsigned char>(c.peek())) ||
             c.peek() == '_')
        c.advance();
      const auto text = c.slice(start);
      const auto it = kKeywords.find(text);
      push(it != kKeywords.end() ? it->second : TokKind::kIdent, loc, text);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(ch))) {
      while (std::isdigit(static_cast<unsigned char>(c.peek()))) c.advance();
      const auto text = c.slice(start);
      std::int64_t v = 0;
      bool overflow = false;
      for (const char d : text) {
        if (v > (INT64_MAX - (d - '0')) / 10) {
          overflow = true;
          break;
        }
        v = v * 10 + (d - '0');
      }
      if (overflow) c.error(loc, "integer literal overflows int64");
      push(TokKind::kInt, loc, text, v);
      continue;
    }
    switch (ch) {
      case ':':
        if (c.peek() == '=') {
          c.advance();
          push(TokKind::kAssign, loc, ":=");
        } else {
          push(TokKind::kColon, loc, ":");
        }
        continue;
      case ';': push(TokKind::kSemi, loc, ";"); continue;
      case ',': push(TokKind::kComma, loc, ","); continue;
      case '[': push(TokKind::kLBracket, loc, "["); continue;
      case ']': push(TokKind::kRBracket, loc, "]"); continue;
      case '{': push(TokKind::kLBrace, loc, "{"); continue;
      case '}': push(TokKind::kRBrace, loc, "}"); continue;
      case '(': push(TokKind::kLParen, loc, "("); continue;
      case ')': push(TokKind::kRParen, loc, ")"); continue;
      case '+': push(TokKind::kPlus, loc, "+"); continue;
      case '-': push(TokKind::kMinus, loc, "-"); continue;
      case '*': push(TokKind::kStar, loc, "*"); continue;
      case '/': push(TokKind::kSlash, loc, "/"); continue;
      case '%': push(TokKind::kPercent, loc, "%"); continue;
      case '=':
        if (c.peek() == '=') {
          c.advance();
          push(TokKind::kEqEq, loc, "==");
        } else {
          c.error(loc, "stray '='; assignment is ':=' and equality is '=='");
        }
        continue;
      case '!':
        if (c.peek() == '=') {
          c.advance();
          push(TokKind::kNe, loc, "!=");
        } else {
          push(TokKind::kBang, loc, "!");
        }
        continue;
      case '<':
        if (c.peek() == '=') {
          c.advance();
          push(TokKind::kLe, loc, "<=");
        } else {
          push(TokKind::kLt, loc, "<");
        }
        continue;
      case '>':
        if (c.peek() == '=') {
          c.advance();
          push(TokKind::kGe, loc, ">=");
        } else {
          push(TokKind::kGt, loc, ">");
        }
        continue;
      case '&':
        if (c.peek() == '&') {
          c.advance();
          push(TokKind::kAndAnd, loc, "&&");
        } else {
          c.error(loc, "stray '&'; did you mean '&&'?");
        }
        continue;
      case '|':
        if (c.peek() == '|') {
          c.advance();
          push(TokKind::kOrOr, loc, "||");
        } else {
          c.error(loc, "stray '|'; did you mean '||'?");
        }
        continue;
      default:
        c.error(loc, std::string("unexpected character '") + ch + "'");
        continue;
    }
  }
  return out;
}

}  // namespace ctdf::lang
