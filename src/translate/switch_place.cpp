#include "translate/switch_place.hpp"

namespace ctdf::translate {

SwitchPlacement::SwitchPlacement(
    const cfg::Graph& g, const cfg::ControlDeps& cd,
    const support::IndexMap<cfg::NodeId, std::vector<Resource>>& uses,
    std::size_t num_resources, bool optimize) {
  placed_.resize(g.size());
  const auto is_real_fork = [&](cfg::NodeId n) {
    return g.kind(n) == cfg::NodeKind::kFork;
  };

  if (!optimize) {
    for (cfg::NodeId n : g.all_nodes()) {
      if (!is_real_fork(n)) continue;
      placed_[n] = support::Bitset(num_resources);
      for (Resource r = 0; r < num_resources; ++r) placed_[n].set(r);
      total_ += num_resources;
    }
    return;
  }

  // Figure 10, run for all resources at once: seed the worklist with
  // every node that references r and close over control dependence.
  for (Resource r = 0; r < num_resources; ++r) {
    std::vector<cfg::NodeId> refs;
    for (cfg::NodeId n : g.all_nodes()) {
      const auto& u = uses[n];
      if (std::find(u.begin(), u.end(), r) != u.end()) refs.push_back(n);
    }
    const support::Bitset cd_plus = cd.iterated(refs);
    cd_plus.for_each([&](std::size_t i) {
      const cfg::NodeId f{i};
      if (!is_real_fork(f)) return;  // start needs no run-time switch
      if (placed_[f].size() == 0) placed_[f] = support::Bitset(num_resources);
      if (!placed_[f].test(r)) {
        placed_[f].set(r);
        ++total_;
      }
    });
  }
}

}  // namespace ctdf::translate
