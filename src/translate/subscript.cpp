#include "translate/subscript.hpp"

#include <algorithm>

namespace ctdf::translate {

namespace {

/// Affine combination helpers over optional forms. A pure constant is
/// represented with var == invalid and coeff == 0.
struct Form {
  lang::VarId var;  ///< invalid for constants
  std::int64_t coeff = 0;
  std::int64_t offset = 0;

  [[nodiscard]] bool is_const() const { return !var.valid(); }
};

std::optional<Form> analyze(const lang::Expr& e) {
  using K = lang::Expr::Kind;
  switch (e.kind) {
    case K::kConst:
      return Form{lang::VarId::invalid(), 0, e.value};
    case K::kVar:
      return Form{e.var, 1, 0};
    case K::kUnary: {
      if (e.uop != lang::UnOp::kNeg) return std::nullopt;
      auto f = analyze(*e.lhs);
      if (!f) return std::nullopt;
      f->coeff = -f->coeff;
      f->offset = -f->offset;
      return f;
    }
    case K::kBinary: {
      const auto l = analyze(*e.lhs);
      const auto r = analyze(*e.rhs);
      if (!l || !r) return std::nullopt;
      switch (e.bop) {
        case lang::BinOp::kAdd:
        case lang::BinOp::kSub: {
          const std::int64_t sign = e.bop == lang::BinOp::kAdd ? 1 : -1;
          Form out;
          if (l->is_const() && r->is_const()) {
            out = Form{lang::VarId::invalid(), 0,
                       l->offset + sign * r->offset};
          } else if (r->is_const()) {
            out = Form{l->var, l->coeff, l->offset + sign * r->offset};
          } else if (l->is_const()) {
            out = Form{r->var, sign * r->coeff, l->offset + sign * r->offset};
          } else if (l->var == r->var) {
            out = Form{l->var, l->coeff + sign * r->coeff,
                       l->offset + sign * r->offset};
            if (out.coeff == 0) out.var = lang::VarId::invalid();
          } else {
            return std::nullopt;  // two distinct variables
          }
          return out;
        }
        case lang::BinOp::kMul: {
          const Form* cst = l->is_const() ? &*l : (r->is_const() ? &*r : nullptr);
          const Form* lin = l->is_const() ? &*r : &*l;
          if (!cst) return std::nullopt;  // var * var
          Form out{lin->var, lin->coeff * cst->offset,
                   lin->offset * cst->offset};
          if (out.coeff == 0) out.var = lang::VarId::invalid();
          return out;
        }
        default:
          return std::nullopt;
      }
    }
    case K::kArrayRef:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

std::optional<Affine> match_affine(const lang::Expr& expr) {
  const auto f = analyze(expr);
  if (!f || f->is_const() || f->coeff == 0) return std::nullopt;
  return Affine{f->var, f->coeff, f->offset};
}

std::optional<std::int64_t> induction_step(const cfg::Graph& g,
                                           const cfg::Loop& loop,
                                           lang::VarId v,
                                           const lang::SymbolTable& syms) {
  if (syms.is_array(v)) return std::nullopt;
  if (syms.alias_class(v).size() != 1) return std::nullopt;

  std::optional<std::int64_t> step;
  int assignments = 0;
  for (cfg::NodeId n : loop.members) {
    const cfg::Node& node = g.node(n);
    if (node.kind != cfg::NodeKind::kAssign || node.lhs.var != v) continue;
    ++assignments;
    if (assignments > 1) return std::nullopt;
    // rhs must be v ± step, i.e. affine in v with coefficient 1.
    const auto f = match_affine(*node.rhs);
    if (!f || f->var != v || f->coeff != 1 || f->offset == 0)
      return std::nullopt;
    step = f->offset;
  }
  if (assignments != 1) return std::nullopt;
  return step;
}

bool stores_parallelizable(const cfg::Graph& g, const cfg::Loop& loop,
                           lang::VarId a, const lang::SymbolTable& syms) {
  bool any_store = false;
  for (cfg::NodeId n : loop.members) {
    const cfg::Node& node = g.node(n);
    std::vector<lang::VarId> reads;
    switch (node.kind) {
      case cfg::NodeKind::kFork:
        node.pred->collect_vars(reads);
        break;
      case cfg::NodeKind::kAssign:
        node.rhs->collect_vars(reads);
        if (node.lhs.index) node.lhs.index->collect_vars(reads);
        break;
      default:
        continue;
    }
    if (std::find(reads.begin(), reads.end(), a) != reads.end())
      return false;  // the array is read somewhere in the loop

    if (node.kind != cfg::NodeKind::kAssign || node.lhs.var != a) continue;
    if (!node.lhs.index) return false;
    const auto affine = match_affine(*node.lhs.index);
    if (!affine) return false;
    if (!induction_step(g, loop, affine->var, syms)) return false;
    any_store = true;
  }
  return any_store;
}

}  // namespace ctdf::translate
