// Internal interface between the stage orchestrator (stages.cpp) and
// the fused Fig. 11 graph construction that remains in translator.cpp.
// Not part of the public translate API.
#pragma once

#include "cfg/dominance.hpp"
#include "cfg/intervals.hpp"
#include "translate/classify.hpp"
#include "translate/source_vectors.hpp"
#include "translate/translator.hpp"

namespace ctdf::translate::detail {

/// The `translate` stage: one reverse-postorder pass over the
/// (loop-transformed) CFG that builds result.graph from the precomputed
/// stage artifacts. `options` must already be normalized. Only
/// result.graph is written; the orchestrator owns every other field.
void build_graph(const lang::Program& prog, const TranslateOptions& options,
                 support::DiagnosticEngine& diags,
                 const lang::StorageLayout& layout, const cfg::Graph& cfg,
                 const cfg::LoopInfo& loops, const Cover& cover,
                 const ResourceClasses& classes, const SourceVectors& sv,
                 const cfg::DomTree& pdom, Translation& result);

}  // namespace ctdf::translate::detail
