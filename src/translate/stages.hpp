// The staged compilation pipeline: one explicit, ordered sequence of
// named stages from program to executable dataflow graph.
//
//   parse → cfg-build → dse → loop-transform → cover → ssa →
//   dominance → control-dep → switch-place → translate → optimize →
//   fanout → validate
//
// Each stage declares an input/output artifact (CFG, loop forest,
// cover/classification, dataflow graph), records wall-time and a
// stage-specific counter set into a PipelineTrace, and can render its
// artifact as text/dot for dump points (`ctdf ... --dump-after=STAGE`).
// `parse` is driven by core::Pipeline — this layer starts from a
// lang::Program. Optional stages are controlled by TranslateOptions
// (dse, optimize, fanout, the switch-place optimization) and by
// StageSet (ssa, validate); a disabled stage is reported as skipped, so
// every trace lists the full stage sequence. The `optimize` stage runs
// the dfg pass manager (TranslateOptions::opt_passes / fuse_limit) and
// reports per-pass counters; the old stage names "post-opt" and
// "fanout-lower" are kept as aliases in stage_from_name.
//
// run_stages is the single implementation behind translate() and
// core::Pipeline::run: identical options produce byte-identical graphs
// on every path by construction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lang/ast.hpp"
#include "support/diagnostics.hpp"
#include "translate/options.hpp"
#include "translate/translator.hpp"

namespace ctdf::translate {

/// Pipeline stages, in execution order.
enum class Stage : std::uint8_t {
  kParse,
  kCfgBuild,
  kDse,
  kLoopTransform,
  kCover,
  kSsa,
  kDominance,
  kControlDep,
  kSwitchPlace,
  kTranslate,
  kOptimize,
  kFanout,
  kValidate,
  /// Graph → machine::ExecProgram lowering. Lives above the translate
  /// layer (it needs the machine library), so run_stages never emits
  /// its record: core::Pipeline appends it, like kParse.
  kLower,
};

inline constexpr std::size_t kNumStages = 14;

[[nodiscard]] const char* to_string(Stage s);
[[nodiscard]] std::optional<Stage> stage_from_name(std::string_view name);
[[nodiscard]] const std::vector<Stage>& all_stages();

/// One executed (or skipped) stage of a pipeline run.
struct StageRecord {
  Stage stage = Stage::kParse;
  bool ran = false;          ///< false: disabled by options or early error
  std::int64_t nanos = 0;    ///< wall time (0 when skipped)
  std::size_t size_in = 0;   ///< artifact size entering (stage-specific unit)
  std::size_t size_out = 0;  ///< artifact size leaving
  /// Stage-specific stats, e.g. {"switches", 3} for switch-place.
  std::vector<std::pair<std::string, std::int64_t>> counters;

  /// Value of a named counter, or -1 when absent.
  [[nodiscard]] std::int64_t counter(std::string_view name) const;
};

struct PipelineTrace {
  std::vector<StageRecord> stages;

  /// The record of stage s, or nullptr if it was never reported.
  [[nodiscard]] const StageRecord* find(Stage s) const;
  [[nodiscard]] std::int64_t total_nanos() const;

  /// Human-readable table: stage, time, artifact size in → out (with
  /// delta), counters. One row per stage, skipped stages dashed.
  [[nodiscard]] std::string table() const;

  /// Deterministic one-line-per-stage rendering (names, sizes, and
  /// counters; no times) — the golden-test / diffing format.
  [[nodiscard]] std::string summary() const;

  /// Accumulates another run's times, sizes, and counters per stage
  /// (used by Pipeline::run_many to aggregate a corpus).
  void merge(const PipelineTrace& other);
};

/// Observer the stage orchestrator reports into; all methods optional.
class StageHooks {
 public:
  virtual ~StageHooks() = default;
  /// Called once per stage, in order, including skipped stages.
  virtual void record(StageRecord /*r*/) {}
  /// Return true to receive the named stage's rendered artifact
  /// (Graphviz for CFG/DFG stages, text for analyses). Called only for
  /// stages that actually run.
  virtual bool wants_dump(Stage /*s*/) { return false; }
  virtual void dump(Stage /*s*/, std::string /*artifact*/) {}
};

/// Pipeline-level stage toggles that have no TranslateOptions flag (the
/// translation-affecting stages carry their own enables there).
struct StageSet {
  /// φ-placement stage: classic SSA statistics over the transformed
  /// CFG, reported in the trace (paper Sec. 6.1's correspondence);
  /// never affects the produced graph.
  bool ssa = false;
  /// Final structural validation of the dataflow graph.
  bool validate = true;
};

/// Runs every stage after `parse` over `prog`, reporting per-stage
/// records and requested dump artifacts to `hooks` (may be null).
/// Frontend/structural problems go to `diags`; on error the returned
/// translation is partial and the remaining stages are reported as
/// skipped.
[[nodiscard]] Translation run_stages(const lang::Program& prog,
                                     const TranslateOptions& options,
                                     support::DiagnosticEngine& diags,
                                     StageHooks* hooks = nullptr,
                                     const StageSet& set = {});

}  // namespace ctdf::translate
