// Source vectors and switch placement (paper Section 4, Figs. 10/11).
//
// Computes, per CFG node, the resources it consumes/produces (the
// inputs of Fig. 11's direct construction) and the Fig. 10 switch
// placement, iterated to the loop-refs fixpoint described in
// translator.hpp: a resource switched by a fork *inside* a loop must
// itself circulate through that loop's entry/exit nodes, so placement
// enlarges loop reference sets until every switched resource is
// loop-resident.
//
// This is the `switch-place` stage of the staged pipeline (stages.hpp).
#pragma once

#include <cstddef>
#include <vector>

#include "cfg/control_dep.hpp"
#include "cfg/graph.hpp"
#include "cfg/intervals.hpp"
#include "support/index_map.hpp"
#include "translate/cover.hpp"
#include "translate/switch_place.hpp"

namespace ctdf::translate {

struct SourceVectors {
  /// uses[n]: resources node n touches; loop entry/exit nodes carry the
  /// (fixpoint-enlarged) reference set of their loop.
  support::IndexMap<cfg::NodeId, std::vector<Resource>> uses;
  SwitchPlacement placement;
  std::size_t fixpoint_rounds = 0;  ///< placement recomputations
};

[[nodiscard]] SourceVectors compute_source_vectors(
    const cfg::Graph& cfg, const cfg::LoopInfo& loops, const Cover& cover,
    const cfg::ControlDeps& cd, std::size_t num_resources,
    bool optimize_switches);

}  // namespace ctdf::translate
