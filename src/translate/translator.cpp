// The fused Fig. 11 construction: one reverse-postorder pass over the
// loop-transformed CFG that wires the dataflow graph from the stage
// artifacts (cover, resource classification, source vectors, switch
// placement, postdominators). Orchestration — stage order, timing,
// stats, dumps — lives in stages.cpp; this file only builds the graph.
#include "translate/translator.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "cfg/dominance.hpp"
#include "cfg/intervals.hpp"
#include "support/assert.hpp"
#include "translate/build_graph.hpp"
#include "translate/classify.hpp"
#include "translate/source_vectors.hpp"
#include "translate/stages.hpp"

namespace ctdf::translate {

namespace {

using cfg::NodeId;
using dfg::PortRef;
using lang::VarId;

/// A compile-time expression value: a literal or a token-producing port.
struct ValueSrc {
  bool is_literal = false;
  std::int64_t literal = 0;
  PortRef port;

  static ValueSrc lit(std::int64_t v) { return {true, v, {}}; }
  static ValueSrc of(PortRef p) { return {false, 0, p}; }
};

/// The token state of one resource at one CFG point: sets of candidate
/// source ports for the main token and (when the resource is "split",
/// Fig. 14 / I-structure modes) the completion-chain token.
struct Comp {
  std::vector<PortRef> main;
  std::vector<PortRef> chain;

  [[nodiscard]] bool empty() const { return main.empty() && chain.empty(); }
};

void add_unique(std::vector<PortRef>& v, PortRef p) {
  if (std::find(v.begin(), v.end(), p) == v.end()) v.push_back(p);
}

/// True iff every source in b is already in a.
bool subsumes(const std::vector<PortRef>& a, const std::vector<PortRef>& b) {
  return std::all_of(b.begin(), b.end(), [&](PortRef p) {
    return std::find(a.begin(), a.end(), p) != a.end();
  });
}

class Builder {
 public:
  Builder(const lang::Program& prog, const TranslateOptions& options,
          support::DiagnosticEngine& diags, const lang::StorageLayout& layout,
          const cfg::Graph& cfg, const cfg::LoopInfo& loops,
          const Cover& cover, const ResourceClasses& classes,
          const SourceVectors& sv, const cfg::DomTree& pdom,
          Translation& result)
      : prog_(prog),
        opt_(options),
        diags_(diags),
        layout_(layout),
        cfg_(cfg),
        loops_(loops),
        cover_(cover),
        classes_(classes),
        sv_(sv),
        pdom_(pdom),
        num_res_(cover.size()),
        result_(result) {}

  // ---------------------------------------------------------------------
  // Construction (fused Fig. 11 + wiring), one RPO pass.
  // ---------------------------------------------------------------------

  void build() {
    dfg::Graph& g = result_.graph;

    const auto rpo = cfg_.reverse_postorder();
    rpo_index_.resize(cfg_.size(), 0);
    for (std::size_t i = 0; i < rpo.size(); ++i)
      rpo_index_[rpo[i]] = static_cast<std::uint32_t>(i);

    incoming_.resize(cfg_.size());
    sinks_.resize(cfg_.size());
    processed_.assign(cfg_.size(), false);
    for (NodeId n : cfg_.all_nodes()) {
      incoming_[n].resize(num_res_);
      sinks_[n].resize(num_res_);
    }

    // Start: one port per resource, all tokens initially 0 (memory is
    // zeroed; eliminated resources carry the value 0).
    {
      dfg::Node s;
      s.kind = dfg::OpKind::kStart;
      s.num_outputs = static_cast<std::uint16_t>(num_res_);
      s.start_values.assign(num_res_, 0);
      s.label = "start";
      const dfg::NodeId sn = g.add(std::move(s));
      g.set_start(sn);
      for (Resource r = 0; r < num_res_; ++r) {
        Comp c;
        c.main.push_back({sn, static_cast<std::uint16_t>(r)});
        if (split_at(cfg_.start(), r)) c.chain = c.main;  // same port fans out
        propagate(cfg_.node(cfg_.start()).succ_true, r, c);
      }
      processed_[cfg_.start().index()] = true;
    }

    for (NodeId n : rpo) {
      if (n == cfg_.start()) continue;
      switch (cfg_.kind(n)) {
        case cfg::NodeKind::kAssign:
        case cfg::NodeKind::kFork:
          build_statement(n);
          break;
        case cfg::NodeKind::kJoin:
          build_join(n);
          break;
        case cfg::NodeKind::kLoopEntry:
          build_loop_entry(n);
          break;
        case cfg::NodeKind::kLoopExit:
          build_loop_exit(n);
          break;
        case cfg::NodeKind::kEnd:
          build_end(n);
          break;
        case cfg::NodeKind::kStart:
          CTDF_UNREACHABLE("start handled above");
      }
      processed_[n.index()] = true;
    }
  }

 private:
  /// Is resource r "split" into (go, chain) tokens at node n?
  [[nodiscard]] bool split_at(NodeId n, Resource r) const {
    return classes_.split_at(loops_, n, r);
  }

  /// Pushes `sources` for resource r along the CFG edge into `to` (or a
  /// bypass jump). If `to` was already processed the sources must either
  /// wire into a registered sink (loop entries, cyclic joins) or be
  /// already-known (a symbolic pass-through closing a cycle).
  void propagate(NodeId to, Resource r, const Comp& sources) {
    if (sources.empty()) return;
    Comp& dst = incoming_[to][r];
    if (!processed_[to.index()]) {
      for (PortRef p : sources.main) add_unique(dst.main, p);
      for (PortRef p : sources.chain) add_unique(dst.chain, p);
      return;
    }
    const Sink& sink = sinks_[to][r];
    if (sink.main.valid()) {
      for (PortRef p : sources.main)
        result_.graph.connect(p, sink.main, arc_dummy(r));
      if (sink.chain.valid()) {
        const auto& chain_srcs =
            sources.chain.empty() ? sources.main : sources.chain;
        for (PortRef p : chain_srcs)
          result_.graph.connect(p, sink.chain, /*dummy=*/true);
      } else {
        CTDF_ASSERT_MSG(sources.chain.empty(),
                        "split token arrived at an unsplit sink");
      }
      return;
    }
    // No sink: legal only if nothing new arrives (a pass-through source
    // flowing around a cycle it never interacted with).
    CTDF_ASSERT_MSG(
        subsumes(dst.main, sources.main) && subsumes(dst.chain, sources.chain),
        "new token source reached an already-constructed node");
  }

  [[nodiscard]] bool arc_dummy(Resource r) const {
    return !classes_.eliminated[r];
  }

  /// Collapses a source set to one port, inserting a dataflow merge when
  /// several exclusive sources feed the same consumer (paper Sec. 4.2:
  /// a join with a single source is no operator).
  PortRef coalesce(const std::vector<PortRef>& sources, Resource r,
                   const std::string& label) {
    CTDF_ASSERT_MSG(!sources.empty(), "consumer with no token source");
    if (sources.size() == 1) return sources.front();
    const dfg::NodeId m = result_.graph.add_merge(label);
    for (PortRef p : sources)
      result_.graph.connect(p, {m, 0}, arc_dummy(r));
    return {m, 0};
  }

  [[nodiscard]] std::string res_name(Resource r) const {
    return cover_.name(r, prog_.symbols);
  }

  // --- joins ---------------------------------------------------------------

  [[nodiscard]] bool has_back_in_edge(NodeId n) const {
    for (NodeId p : cfg_.preds(n))
      if (rpo_index_[p] >= rpo_index_[n]) return true;
    return false;
  }

  void build_join(NodeId n) {
    const NodeId succ = cfg_.node(n).succ_true;
    if (has_back_in_edge(n)) {
      // Only possible in sequential (Schema 1) mode, where joins are
      // translated to merges and cycles carry the single access token.
      CTDF_ASSERT_MSG(opt_.sequential,
                      "cyclic join outside sequential mode (loop transform "
                      "should have rerouted it)");
      for (Resource r = 0; r < num_res_; ++r) {
        Comp& in = incoming_[n][r];
        if (in.empty()) continue;
        const dfg::NodeId m =
            result_.graph.add_merge("join " + cfg_.node(n).name);
        for (PortRef p : in.main)
          result_.graph.connect(p, {m, 0}, arc_dummy(r));
        sinks_[n][r].main = {m, 0};
        Comp out;
        out.main.push_back({m, 0});
        propagate(succ, r, out);
      }
      return;
    }
    for (Resource r = 0; r < num_res_; ++r) {
      Comp& in = incoming_[n][r];
      if (in.empty()) continue;
      Comp out;
      if (in.main.size() > 1 || in.chain.size() > 1) {
        out.main.push_back(coalesce(in.main, r, "merge " + res_name(r)));
        if (!in.chain.empty())
          out.chain.push_back(coalesce(in.chain, r, "merge'" + res_name(r)));
      } else {
        out = in;
      }
      propagate(succ, r, out);
    }
  }

  // --- loop entry / exit -----------------------------------------------------

  void build_loop_entry(NodeId n) {
    dfg::Graph& g = result_.graph;
    const cfg::Node& node = cfg_.node(n);
    const auto& res = sv_.uses[n];
    const NodeId succ = node.succ_true;

    if (!res.empty()) {
      // Port layout: for each resource in order, a main port and (if
      // split inside this loop) a chain port.
      std::vector<std::pair<Resource, bool>> slots;
      for (Resource r : res) slots.emplace_back(r, split_at(n, r));
      std::uint16_t ports = 0;
      for (auto& [r, split] : slots) ports += split ? 2 : 1;

      const dfg::NodeId le = g.add_loop_entry(
          node.loop, ports, "L" + std::to_string(node.loop.value()));
      std::uint16_t next_port = 0;
      for (auto& [r, split] : slots) {
        const PortRef main_in{le, next_port};
        const PortRef chain_in =
            split ? PortRef{le, static_cast<std::uint16_t>(next_port + 1)}
                  : PortRef{};
        next_port += split ? 2 : 1;

        Comp& in = incoming_[n][r];
        CTDF_ASSERT_MSG(!in.main.empty(), "loop resource never produced");
        for (PortRef p : in.main) g.connect(p, main_in, arc_dummy(r));
        if (split) {
          const auto& chain_srcs = in.chain.empty() ? in.main : in.chain;
          for (PortRef p : chain_srcs) g.connect(p, chain_in, true);
        } else {
          CTDF_ASSERT_MSG(in.chain.empty(),
                          "split token entering unsplit loop port");
        }
        sinks_[n][r] = Sink{main_in, chain_in};

        Comp out;
        out.main.push_back(main_in);   // loop entry out-port i mirrors in-port i
        if (split) out.chain.push_back(chain_in);
        propagate(succ, r, out);
      }
    }

    // Resources the loop does not touch flow past symbolically.
    for (Resource r = 0; r < num_res_; ++r) {
      if (std::find(res.begin(), res.end(), r) != res.end()) continue;
      propagate(succ, r, incoming_[n][r]);
    }
  }

  void build_loop_exit(NodeId n) {
    dfg::Graph& g = result_.graph;
    const cfg::Node& node = cfg_.node(n);
    const auto& res = sv_.uses[n];
    const NodeId succ = node.succ_true;
    const NodeId pred = cfg_.preds(n).front();

    if (!res.empty()) {
      std::vector<std::pair<Resource, bool>> slots;
      for (Resource r : res) slots.emplace_back(r, split_at(pred, r));
      std::uint16_t ports = 0;
      for (auto& [r, split] : slots) ports += split ? 2 : 1;

      const dfg::NodeId lx = g.add_loop_exit(
          node.loop, ports, "X" + std::to_string(node.loop.value()));
      std::uint16_t next_port = 0;
      for (auto& [r, split_in] : slots) {
        const PortRef main_in{lx, next_port};
        const PortRef chain_in =
            split_in ? PortRef{lx, static_cast<std::uint16_t>(next_port + 1)}
                     : PortRef{};
        next_port += split_in ? 2 : 1;

        Comp& in = incoming_[n][r];
        CTDF_ASSERT_MSG(!in.main.empty(), "loop exit resource missing");
        for (PortRef p : in.main) g.connect(p, main_in, arc_dummy(r));
        if (split_in) {
          const auto& chain_srcs = in.chain.empty() ? in.main : in.chain;
          for (PortRef p : chain_srcs) g.connect(p, chain_in, true);
        }

        Comp out;
        if (split_in && !split_at(n, r)) {
          // Leaving the relaxed region: wait for the completion chain
          // (all outstanding stores) before releasing the access token.
          const dfg::NodeId sy = g.add_synch(2, "collect " + res_name(r));
          g.connect(main_in, {sy, 0}, true);
          g.connect(chain_in, {sy, 1}, true);
          out.main.push_back({sy, 0});
        } else {
          out.main.push_back(main_in);
          if (split_in) out.chain.push_back(chain_in);
        }
        propagate(succ, r, out);
      }
    }

    for (Resource r = 0; r < num_res_; ++r) {
      if (std::find(res.begin(), res.end(), r) != res.end()) continue;
      propagate(succ, r, incoming_[n][r]);
    }
  }

  // --- end -------------------------------------------------------------------

  void build_end(NodeId n) {
    dfg::Graph& g = result_.graph;
    dfg::Node e;
    e.kind = dfg::OpKind::kEnd;
    e.num_inputs = static_cast<std::uint16_t>(num_res_);
    e.label = "end";
    const dfg::NodeId en = g.add(std::move(e));
    g.set_end(en);

    for (Resource r = 0; r < num_res_; ++r) {
      Comp& in = incoming_[n][r];
      CTDF_ASSERT_MSG(!in.main.empty(),
                      "a resource token never reached the end node");
      const PortRef dst{en, static_cast<std::uint16_t>(r)};
      if (!in.chain.empty()) {
        // I-structure resources: wait for the write-completion chain
        // too.
        const dfg::NodeId sy = g.add_synch(2, "end-collect " + res_name(r));
        for (PortRef p : in.main) g.connect(p, {sy, 0}, true);
        for (PortRef p : in.chain) g.connect(p, {sy, 1}, true);
        g.connect({sy, 0}, dst, true);
      } else if (classes_.eliminated[r]) {
        // Write the token-carried value back so the final store is
        // observable (and comparable with the reference interpreter).
        const VarId v = cover_.singleton_var(r);
        const dfg::NodeId st = g.add_store(
            static_cast<std::uint32_t>(layout_.base(v)),
            "writeback " + prog_.symbols.name(v));
        const PortRef src = coalesce(in.main, r, "wb " + res_name(r));
        g.connect(src, {st, 0}, false);  // value
        g.connect(src, {st, 1}, false);  // permission = the token itself
        g.connect({st, 0}, dst, true);
      } else {
        for (PortRef p : in.main) g.connect(p, dst, true);
      }
    }
  }

  // --- statements (assignments and forks) -------------------------------------

  struct CurState {
    PortRef entry_main;               ///< snapshot at statement entry
    PortRef main;                     ///< rolling permission/value token
    PortRef chain;                    ///< completion chain (split modes)
    std::vector<PortRef> pending_acks;  ///< parallel-read acks to collect
  };

  /// Per-statement construction state.
  struct StmtCtx {
    std::map<Resource, CurState> cur;
    std::unordered_map<std::uint32_t, PortRef> scalar_loads;  // by VarId
  };

  CurState& state_of(StmtCtx& sc, Resource r) {
    const auto it = sc.cur.find(r);
    CTDF_ASSERT_MSG(it != sc.cur.end(),
                    "statement touched a resource outside its use set");
    return it->second;
  }

  void init_statement(NodeId n, StmtCtx& sc) {
    for (Resource r : sv_.uses[n]) {
      Comp& in = incoming_[n][r];
      CurState st;
      st.entry_main = coalesce(in.main, r, "in " + res_name(r));
      st.main = st.entry_main;
      if (!in.chain.empty())
        st.chain = coalesce(in.chain, r, "in' " + res_name(r));
      sc.cur.emplace(r, st);
    }
  }

  /// Permission source for a read of resource r.
  PortRef read_perm(StmtCtx& sc, Resource r) {
    CurState& st = state_of(sc, r);
    return opt_.parallel_reads ? st.entry_main : st.main;
  }

  void note_read_ack(StmtCtx& sc, Resource r, PortRef ack) {
    CurState& st = state_of(sc, r);
    if (opt_.parallel_reads) {
      st.pending_acks.push_back(ack);
    } else {
      st.main = ack;
    }
  }

  /// Collect outstanding parallel-read acks of r into st.main.
  void flush_reads(StmtCtx& sc, Resource r) {
    CurState& st = state_of(sc, r);
    if (st.pending_acks.empty()) return;
    if (st.pending_acks.size() == 1) {
      st.main = st.pending_acks.front();
    } else {
      const dfg::NodeId sy = result_.graph.add_synch(
          static_cast<std::uint16_t>(st.pending_acks.size()),
          "reads " + res_name(r));
      for (std::size_t i = 0; i < st.pending_acks.size(); ++i)
        result_.graph.connect(st.pending_acks[i],
                              {sy, static_cast<std::uint16_t>(i)}, true);
      st.main = {sy, 0};
    }
    st.pending_acks.clear();
  }

  void flush_all_reads(StmtCtx& sc) {
    for (auto& [r, st] : sc.cur) flush_reads(sc, r);
  }

  /// Wires a ValueSrc into a node input port (literal binding or arc).
  void wire_value(ValueSrc v, PortRef dst) {
    if (v.is_literal) {
      result_.graph.bind_literal(dst, v.literal);
    } else {
      result_.graph.connect(v.port, dst, false);
    }
  }

  /// Builds the access-set collection for a memory op: the synch tree
  /// that gathers access_{[x]} (Fig. 13), or a single arc.
  void wire_permission(StmtCtx& sc, const std::vector<Resource>& rs,
                       PortRef dst, bool for_read) {
    dfg::Graph& g = result_.graph;
    if (rs.size() == 1) {
      const Resource r = rs.front();
      const PortRef src =
          for_read ? read_perm(sc, r) : state_of(sc, r).main;
      g.connect(src, dst, true);
      return;
    }
    const dfg::NodeId sy =
        g.add_synch(static_cast<std::uint16_t>(rs.size()), "access-set");
    for (std::size_t i = 0; i < rs.size(); ++i) {
      const Resource r = rs[i];
      const PortRef src =
          for_read ? read_perm(sc, r) : state_of(sc, r).main;
      g.connect(src, {sy, static_cast<std::uint16_t>(i)}, true);
    }
    g.connect({sy, 0}, dst, true);
  }

  ValueSrc read_scalar(StmtCtx& sc, VarId v) {
    const auto& rs = cover_.access_set(v);
    if (rs.size() == 1 && classes_.eliminated[rs.front()])
      return ValueSrc::of(state_of(sc, rs.front()).main);

    if (const auto it = sc.scalar_loads.find(v.value());
        it != sc.scalar_loads.end())
      return ValueSrc::of(it->second);

    dfg::Graph& g = result_.graph;
    const dfg::NodeId ld = g.add_load(
        static_cast<std::uint32_t>(layout_.base(v)), prog_.symbols.name(v));
    wire_permission(sc, rs, {ld, 0}, /*for_read=*/true);
    for (Resource r : rs) note_read_ack(sc, r, {ld, dfg::port::kLoadAck});
    const PortRef value{ld, dfg::port::kLoadValue};
    sc.scalar_loads.emplace(v.value(), value);
    return ValueSrc::of(value);
  }

  ValueSrc read_array(NodeId n, StmtCtx& sc, VarId a, ValueSrc index) {
    dfg::Graph& g = result_.graph;
    const auto& rs = cover_.access_set(a);
    const auto base = static_cast<std::uint32_t>(layout_.base(a));
    const auto extent = static_cast<std::int64_t>(layout_.extent(a));

    if (rs.size() == 1 && classes_.istructure[rs.front()]) {
      const dfg::NodeId f =
          g.add_ifetch(base, extent, prog_.symbols.name(a) + "[]");
      wire_value(index, {f, 0});
      // Trigger only (no serialization, no ack): reads of I-structure
      // cells defer in memory until the write arrives.
      g.connect(state_of(sc, rs.front()).main, {f, 1}, true);
      return ValueSrc::of(PortRef{f, 0});
    }
    CTDF_ASSERT_MSG(rs.size() != 1 || !split_at(n, rs.front()),
                    "array read inside a store-parallelized loop "
                    "(qualification should have rejected this)");

    const dfg::NodeId ld =
        g.add_load_idx(base, extent, prog_.symbols.name(a) + "[]");
    wire_value(index, {ld, 0});
    wire_permission(sc, rs, {ld, 1}, /*for_read=*/true);
    for (Resource r : rs) note_read_ack(sc, r, {ld, dfg::port::kLoadAck});
    return ValueSrc::of(PortRef{ld, dfg::port::kLoadValue});
  }

  ValueSrc build_expr(NodeId n, StmtCtx& sc, const lang::Expr& e) {
    switch (e.kind) {
      case lang::Expr::Kind::kConst:
        return ValueSrc::lit(e.value);
      case lang::Expr::Kind::kVar:
        return read_scalar(sc, e.var);
      case lang::Expr::Kind::kArrayRef:
        return read_array(n, sc, e.var, build_expr(n, sc, *e.lhs));
      case lang::Expr::Kind::kUnary: {
        const ValueSrc v = build_expr(n, sc, *e.lhs);
        if (v.is_literal)
          return ValueSrc::lit(lang::eval_unop(e.uop, v.literal));
        const dfg::NodeId op = result_.graph.add_unop(e.uop);
        wire_value(v, {op, 0});
        return ValueSrc::of(PortRef{op, 0});
      }
      case lang::Expr::Kind::kBinary: {
        const ValueSrc l = build_expr(n, sc, *e.lhs);
        const ValueSrc r = build_expr(n, sc, *e.rhs);
        if (l.is_literal && r.is_literal)
          return ValueSrc::lit(lang::eval_binop(e.bop, l.literal, r.literal));
        const dfg::NodeId op = result_.graph.add_binop(e.bop);
        wire_value(l, {op, 0});
        wire_value(r, {op, 1});
        return ValueSrc::of(PortRef{op, 0});
      }
    }
    CTDF_UNREACHABLE("bad Expr::Kind");
  }

  void write_lvalue(NodeId n, StmtCtx& sc, const lang::LValue& lv,
                    ValueSrc value, ValueSrc index) {
    dfg::Graph& g = result_.graph;
    const VarId v = lv.var;
    const auto& rs = cover_.access_set(v);
    const auto base = static_cast<std::uint32_t>(layout_.base(v));
    const auto extent = static_cast<std::int64_t>(layout_.extent(v));

    // Memory-eliminated scalar: the new value becomes the token.
    if (rs.size() == 1 && classes_.eliminated[rs.front()]) {
      CurState& st = state_of(sc, rs.front());
      if (value.is_literal) {
        const dfg::NodeId gate = g.add_gate(prog_.symbols.name(v) + ":=" +
                                            std::to_string(value.literal));
        g.bind_literal({gate, 0}, value.literal);
        g.connect(st.main, {gate, 1}, false);  // consume the old token
        st.main = {gate, 0};
      } else {
        st.main = value.port;
      }
      return;
    }

    // I-structure array: concurrent write, ack joins the chain.
    if (rs.size() == 1 && classes_.istructure[rs.front()]) {
      CurState& st = state_of(sc, rs.front());
      const dfg::NodeId istore =
          g.add_istore(base, extent, prog_.symbols.name(v) + "[]!");
      wire_value(value, {istore, 0});
      wire_value(index, {istore, 1});
      g.connect(st.main, {istore, 2}, true);  // trigger, not consumed
      const dfg::NodeId sy = g.add_synch(2, "chain " + res_name(rs.front()));
      g.connect(st.chain, {sy, 0}, true);
      g.connect({istore, 0}, {sy, 1}, true);
      st.chain = {sy, 0};
      return;
    }

    // Fig. 14 store-parallelized array inside its marked loop: the go
    // token is replicated (no serialization between iterations' stores);
    // completion accumulates on the chain.
    if (rs.size() == 1 && split_at(n, rs.front())) {
      CurState& st = state_of(sc, rs.front());
      const dfg::NodeId store =
          g.add_store_idx(base, extent, prog_.symbols.name(v) + "[]*");
      wire_value(value, {store, 0});
      wire_value(index, {store, 1});
      g.connect(st.main, {store, 2}, true);  // dup of go, main unchanged
      const dfg::NodeId sy = g.add_synch(2, "chain " + res_name(rs.front()));
      g.connect(st.chain, {sy, 0}, true);
      g.connect({store, 0}, {sy, 1}, true);
      st.chain = {sy, 0};
      return;
    }

    // Ordinary store: collect the access set (after this statement's
    // reads of those resources), write, thread the acks onward.
    for (Resource r : rs) flush_reads(sc, r);
    dfg::NodeId store;
    if (lv.is_array_elem()) {
      store = g.add_store_idx(base, extent, prog_.symbols.name(v) + "[]");
      wire_value(value, {store, 0});
      wire_value(index, {store, 1});
      wire_permission(sc, rs, {store, 2}, /*for_read=*/false);
    } else {
      store = g.add_store(base, prog_.symbols.name(v));
      wire_value(value, {store, 0});
      wire_permission(sc, rs, {store, 1}, /*for_read=*/false);
    }
    for (Resource r : rs) state_of(sc, r).main = {store, 0};
  }

  void build_statement(NodeId n) {
    dfg::Graph& g = result_.graph;
    const cfg::Node& node = cfg_.node(n);
    StmtCtx sc;
    init_statement(n, sc);

    if (node.kind == cfg::NodeKind::kAssign) {
      const ValueSrc value = build_expr(n, sc, *node.rhs);
      ValueSrc index;
      if (node.lhs.is_array_elem()) index = build_expr(n, sc, *node.lhs.index);
      write_lvalue(n, sc, node.lhs, value, index);
      flush_all_reads(sc);
      const NodeId succ = node.succ_true;
      for (Resource r : sv_.uses[n]) {
        CurState& st = state_of(sc, r);
        Comp out;
        out.main.push_back(st.main);
        if (st.chain.valid()) out.chain.push_back(st.chain);
        propagate(succ, r, out);
      }
      for (Resource r = 0; r < num_res_; ++r) {
        if (sc.cur.contains(r)) continue;
        propagate(succ, r, incoming_[n][r]);
      }
      return;
    }

    // Fork: evaluate the predicate, then switch every access token that
    // needs routing here; everything else bypasses to the immediate
    // postdominator (Sec. 4).
    const ValueSrc pred = build_expr(n, sc, *node.pred);
    flush_all_reads(sc);

    const NodeId succ_t = node.succ_true;
    const NodeId succ_f = node.succ_false;
    const NodeId ipdom = pdom_.idom(n);

    const auto add_switch = [&](PortRef data, Resource r,
                                const char* tag) -> dfg::NodeId {
      const dfg::NodeId sw = g.add_switch("sw" + std::string(tag) + " " +
                                          res_name(r));
      g.connect(data, {sw, dfg::port::kSwitchData}, arc_dummy(r));
      wire_value(pred, {sw, dfg::port::kSwitchPred});
      return sw;
    };

    for (Resource r = 0; r < num_res_; ++r) {
      const bool used = sc.cur.contains(r);
      if (sv_.placement.needs_switch(n, r)) {
        if (!used && incoming_[n][r].empty()) {
          // Conservative placement marked this fork, but no token is
          // actually routed through it (it can only happen when the
          // placement over-approximates reachability).
          continue;
        }
        PortRef main;
        PortRef chain;
        if (used) {
          CurState& st = state_of(sc, r);
          main = st.main;
          chain = st.chain;
        } else {
          Comp& in = incoming_[n][r];
          main = coalesce(in.main, r, "sw-in " + res_name(r));
          if (!in.chain.empty())
            chain = coalesce(in.chain, r, "sw-in' " + res_name(r));
        }
        const dfg::NodeId sw = add_switch(main, r, "");
        Comp out_t, out_f;
        out_t.main.push_back({sw, dfg::port::kSwitchTrue});
        out_f.main.push_back({sw, dfg::port::kSwitchFalse});
        if (chain.valid()) {
          const dfg::NodeId swc = add_switch(chain, r, "'");
          out_t.chain.push_back({swc, dfg::port::kSwitchTrue});
          out_f.chain.push_back({swc, dfg::port::kSwitchFalse});
        }
        propagate(succ_t, r, out_t);
        propagate(succ_f, r, out_f);
      } else if (used) {
        CurState& st = state_of(sc, r);
        Comp out;
        out.main.push_back(st.main);
        if (st.chain.valid()) out.chain.push_back(st.chain);
        propagate(ipdom, r, out);
      } else {
        propagate(ipdom, r, incoming_[n][r]);
      }
    }
  }

  // --- members ---------------------------------------------------------------

  struct Sink {
    PortRef main;
    PortRef chain;
  };

  const lang::Program& prog_;
  const TranslateOptions& opt_;  ///< already normalized by the orchestrator
  support::DiagnosticEngine& diags_;
  const lang::StorageLayout& layout_;

  const cfg::Graph& cfg_;
  const cfg::LoopInfo& loops_;
  const Cover& cover_;
  const ResourceClasses& classes_;
  const SourceVectors& sv_;
  const cfg::DomTree& pdom_;
  std::size_t num_res_;

  support::IndexMap<NodeId, std::uint32_t> rpo_index_;
  support::IndexMap<NodeId, std::vector<Comp>> incoming_;
  support::IndexMap<NodeId, std::vector<Sink>> sinks_;
  std::vector<bool> processed_;

  Translation& result_;
};

}  // namespace

namespace detail {

void build_graph(const lang::Program& prog, const TranslateOptions& options,
                 support::DiagnosticEngine& diags,
                 const lang::StorageLayout& layout, const cfg::Graph& cfg,
                 const cfg::LoopInfo& loops, const Cover& cover,
                 const ResourceClasses& classes, const SourceVectors& sv,
                 const cfg::DomTree& pdom, Translation& result) {
  Builder(prog, options, diags, layout, cfg, loops, cover, classes, sv, pdom,
          result)
      .build();
}

}  // namespace detail

Translation translate(const lang::Program& prog,
                      const TranslateOptions& options,
                      support::DiagnosticEngine& diags) {
  return run_stages(prog, options, diags);
}

Translation translate_or_throw(const lang::Program& prog,
                               const TranslateOptions& options) {
  support::DiagnosticEngine diags;
  Translation t = translate(prog, options, diags);
  diags.throw_if_errors();
  return t;
}

}  // namespace ctdf::translate
