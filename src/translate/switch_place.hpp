// Switch placement (paper Section 4.1, Figure 10).
//
// For each resource (cover element) we compute the set of forks that
// need a switch for its access token. By Theorem 1 / Corollary 1, a
// fork F needs a switch for access_r iff F ∈ CD⁺(N) for some node N
// that uses r; Figure 10's worklist computes exactly that closure from
// the control-dependence relation.
//
// In unoptimized mode (plain Schema 2/3) every fork needs a switch for
// every resource — tokens follow the path of sequential execution.
#pragma once

#include "cfg/control_dep.hpp"
#include "cfg/graph.hpp"
#include "support/bitset.hpp"
#include "support/index_map.hpp"
#include "translate/cover.hpp"

namespace ctdf::translate {

class SwitchPlacement {
 public:
  /// Empty placement (no forks, no switches); assign a computed one.
  SwitchPlacement() = default;

  /// `uses[n]` must list the resources node n uses (loop entry/exit
  /// refs included). When `optimize` is false every fork (every node
  /// with a false out-edge except start) needs every resource.
  SwitchPlacement(const cfg::Graph& g, const cfg::ControlDeps& cd,
                  const support::IndexMap<cfg::NodeId, std::vector<Resource>>& uses,
                  std::size_t num_resources, bool optimize);

  /// Does fork F need a switch for access_r? (False for start, which
  /// has no run-time predicate despite being a fork by convention.)
  [[nodiscard]] bool needs_switch(cfg::NodeId fork, Resource r) const {
    return placed_[fork].size() != 0 && placed_[fork].test(r);
  }

  /// Total switches that will be emitted.
  [[nodiscard]] std::size_t total() const { return total_; }

 private:
  support::IndexMap<cfg::NodeId, support::Bitset> placed_;
  std::size_t total_ = 0;
};

}  // namespace ctdf::translate
