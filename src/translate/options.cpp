#include "translate/options.hpp"

#include <sstream>

namespace ctdf::translate {

std::string TranslateOptions::describe() const {
  std::ostringstream os;
  if (sequential) {
    os << "schema1(sequential)";
  } else {
    os << "schema" << (cover == CoverStrategy::kSingleton ? "2" : "3")
       << "(cover=" << to_string(cover) << ")";
  }
  if (optimize_switches) os << "+opt-switches";
  if (eliminate_memory) os << "+mem-elim";
  if (parallel_reads && !sequential) os << "+par-reads";
  if (!parallel_store_arrays.empty()) os << "+fig14";
  if (!istructure_arrays.empty()) os << "+istructures";
  if (dead_store_elimination) os << "+dse";
  if (post_optimize) os << "+post-opt";
  return os.str();
}

}  // namespace ctdf::translate
