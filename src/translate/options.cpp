#include "translate/options.hpp"

#include <sstream>
#include <stdexcept>

namespace ctdf::translate {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

/// Value of "--flag=value" (empty when no '=').
std::string_view value_of(std::string_view arg) {
  const auto eq = arg.find('=');
  return eq == std::string_view::npos ? std::string_view{}
                                      : arg.substr(eq + 1);
}

}  // namespace

std::string TranslateOptions::describe() const {
  std::ostringstream os;
  if (sequential) {
    os << "schema1(sequential)";
  } else {
    os << "schema" << (cover == CoverStrategy::kSingleton ? "2" : "3")
       << "(cover=" << to_string(cover) << ")";
  }
  if (optimize_switches) os << "+opt-switches";
  if (eliminate_memory) os << "+mem-elim";
  if (parallel_reads && !sequential) os << "+par-reads";
  if (!parallel_store_arrays.empty()) os << "+fig14";
  if (!istructure_arrays.empty()) os << "+istructures";
  if (dead_store_elimination) os << "+dse";
  if (post_optimize) os << "+post-opt";
  if (post_optimize && opt_passes.enabled(dfg::PassId::kFuse)) os << "+fuse";
  return os.str();
}

TranslateOptions TranslateOptions::normalized() const {
  TranslateOptions o = *this;
  if (o.sequential) {
    o.cover = CoverStrategy::kUnified;
    o.optimize_switches = false;
    o.eliminate_memory = false;
    o.parallel_reads = true;
    o.parallel_store_arrays.clear();
    o.istructure_arrays.clear();
  }
  return o;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

SchemaFlagParse apply_schema_flag(TranslateOptions& o, std::string_view arg) {
  if (arg == "--schema1") {
    o = TranslateOptions::schema1();
  } else if (arg == "--no-opt") {
    o.optimize_switches = false;
  } else if (starts_with(arg, "--cover=")) {
    const auto v = value_of(arg);
    if (v == "singleton")
      o.cover = CoverStrategy::kSingleton;
    else if (v == "alias-class")
      o.cover = CoverStrategy::kAliasClass;
    else if (v == "component")
      o.cover = CoverStrategy::kComponent;
    else if (v == "unified")
      o.cover = CoverStrategy::kUnified;
    else
      return SchemaFlagParse::kBadValue;
  } else if (arg == "--mem-elim") {
    o.eliminate_memory = true;
  } else if (arg == "--dse") {
    o.dead_store_elimination = true;
  } else if (arg == "--post-opt") {
    o.post_optimize = true;
  } else if (starts_with(arg, "--opt=")) {
    const auto v = value_of(arg);
    if (v == "none") {
      o.post_optimize = false;
      o.opt_passes = dfg::PassSet::none();
    } else if (v == "all") {
      o.post_optimize = true;
      o.opt_passes = dfg::PassSet::all();
    } else {
      dfg::PassSet set;
      for (const std::string& name : split_csv(std::string(v))) {
        const auto pass = dfg::pass_from_name(name);
        if (!pass) return SchemaFlagParse::kBadValue;
        set.enable(*pass);
      }
      if (!set.any()) return SchemaFlagParse::kBadValue;
      o.post_optimize = true;
      o.opt_passes = set;
    }
  } else if (starts_with(arg, "--fuse-limit=")) {
    try {
      o.fuse_limit = std::stoul(std::string(value_of(arg)));
    } catch (const std::exception&) {
      return SchemaFlagParse::kBadValue;
    }
    // A macro needs at least a head and one absorbed tail.
    if (o.fuse_limit < 2) return SchemaFlagParse::kBadValue;
  } else if (starts_with(arg, "--max-fanout=")) {
    try {
      o.max_fanout = std::stoul(std::string(value_of(arg)));
    } catch (const std::exception&) {
      return SchemaFlagParse::kBadValue;
    }
    // lower_fanout requires ≥ 2 destinations (0 = unlimited, stage off);
    // 1 would demand infinite replication.
    if (o.max_fanout == 1) return SchemaFlagParse::kBadValue;
  } else if (arg == "--par-reads") {
    o.parallel_reads = true;
  } else if (starts_with(arg, "--fig14=")) {
    o.parallel_store_arrays = split_csv(std::string(value_of(arg)));
  } else if (starts_with(arg, "--istructure=")) {
    o.istructure_arrays = split_csv(std::string(value_of(arg)));
  } else {
    return SchemaFlagParse::kNotSchemaFlag;
  }
  return SchemaFlagParse::kApplied;
}

}  // namespace ctdf::translate
