#include "translate/classify.hpp"

#include <algorithm>
#include <optional>

#include "translate/subscript.hpp"

namespace ctdf::translate {

bool ResourceClasses::split_at(const cfg::LoopInfo& loops, cfg::NodeId n,
                               Resource r) const {
  if (istructure[r]) return true;
  for (const cfg::Loop& loop : loops.loops()) {
    const auto& ms = marked[loop.id.index()];
    if (std::find(ms.begin(), ms.end(), r) != ms.end() &&
        loops.in_loop(n, loop.id))
      return true;
  }
  return false;
}

std::size_t ResourceClasses::eliminated_count() const {
  return static_cast<std::size_t>(
      std::count(eliminated.begin(), eliminated.end(), true));
}

std::size_t ResourceClasses::istructure_count() const {
  return static_cast<std::size_t>(
      std::count(istructure.begin(), istructure.end(), true));
}

ResourceClasses classify_resources(const lang::Program& prog,
                                   const TranslateOptions& options,
                                   const Cover& cover, const cfg::Graph& cfg,
                                   const cfg::LoopInfo& loops,
                                   const lang::StorageLayout& layout,
                                   support::DiagnosticEngine& diags) {
  using lang::VarId;
  const std::size_t num_res = cover.size();

  ResourceClasses rc;
  rc.eliminated.assign(num_res, false);
  rc.istructure.assign(num_res, false);
  if (options.eliminate_memory) {
    for (Resource r = 0; r < num_res; ++r)
      rc.eliminated[r] = cover.eliminable(r, prog.symbols);
  }

  const auto singleton_array_resource =
      [&](const std::string& name) -> std::optional<Resource> {
    const auto v = prog.symbols.lookup(name);
    if (!v || !prog.symbols.is_array(*v)) {
      diags.warning({}, "'" + name + "' is not a declared array; ignored");
      return std::nullopt;
    }
    if (prog.symbols.alias_class(*v).size() != 1 ||
        cover.access_set(*v).size() != 1) {
      diags.warning({}, "array '" + name +
                            "' is aliased or covered jointly; cannot "
                            "relax its access ordering");
      return std::nullopt;
    }
    const Resource r = cover.access_set(*v).front();
    if (cover.element(r).size() != 1) return std::nullopt;
    return r;
  };

  for (const auto& name : options.istructure_arrays) {
    if (const auto r = singleton_array_resource(name)) {
      rc.istructure[*r] = true;
      const VarId v = cover.singleton_var(*r);
      rc.istructure_regions.push_back(
          IRegion{static_cast<std::uint32_t>(layout.base(v)),
                  static_cast<std::uint32_t>(layout.extent(v))});
    }
  }

  // Fig. 14: per (loop, array) qualification. Requires the user to
  // nominate the array AND a conservative subscript check: inside the
  // loop the array is only stored to, each store's subscript is
  // i or i±c for a simple induction variable i of that loop.
  rc.marked.assign(loops.loops().size(), {});
  for (const auto& name : options.parallel_store_arrays) {
    const auto r = singleton_array_resource(name);
    if (!r || rc.istructure[*r]) continue;
    const VarId a = cover.singleton_var(*r);
    for (const cfg::Loop& loop : loops.loops()) {
      if (stores_parallelizable(cfg, loop, a, prog.symbols)) {
        rc.marked[loop.id.index()].push_back(*r);
        ++rc.loops_store_parallelized;
      }
    }
  }
  return rc;
}

}  // namespace ctdf::translate
