#include "translate/cover.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace ctdf::translate {

const char* to_string(CoverStrategy s) {
  switch (s) {
    case CoverStrategy::kSingleton: return "singleton";
    case CoverStrategy::kAliasClass: return "alias-class";
    case CoverStrategy::kComponent: return "component";
    case CoverStrategy::kUnified: return "unified";
  }
  CTDF_UNREACHABLE("bad CoverStrategy");
}

Cover Cover::make(const lang::SymbolTable& syms, CoverStrategy strategy) {
  Cover c;
  const auto vars = syms.all_vars();
  switch (strategy) {
    case CoverStrategy::kSingleton:
      for (lang::VarId v : vars) c.elements_.push_back({v});
      break;
    case CoverStrategy::kAliasClass:
      for (lang::VarId v : vars) {
        auto cls = syms.alias_class(v);
        if (std::find(c.elements_.begin(), c.elements_.end(), cls) ==
            c.elements_.end())
          c.elements_.push_back(std::move(cls));
      }
      break;
    case CoverStrategy::kComponent: {
      // Connected components of the alias graph (union-find over may-
      // alias pairs). Alias classes never span components, so every
      // access set is a single element.
      std::vector<std::size_t> parent(vars.size());
      for (std::size_t i = 0; i < vars.size(); ++i) parent[i] = i;
      const auto find = [&](std::size_t i) {
        while (parent[i] != i) i = parent[i] = parent[parent[i]];
        return i;
      };
      for (std::size_t i = 0; i < vars.size(); ++i)
        for (std::size_t j = i + 1; j < vars.size(); ++j)
          if (syms.may_alias(vars[i], vars[j])) parent[find(j)] = find(i);
      std::vector<std::vector<lang::VarId>> by_root(vars.size());
      for (std::size_t i = 0; i < vars.size(); ++i)
        by_root[find(i)].push_back(vars[i]);
      for (auto& component : by_root)
        if (!component.empty()) c.elements_.push_back(std::move(component));
      break;
    }
    case CoverStrategy::kUnified:
      c.elements_.push_back(vars);
      break;
  }

  // Access sets: C[x] = { c : c ∩ [x] ≠ ∅ }.
  c.access_sets_.resize(vars.size());
  for (lang::VarId v : vars) {
    const auto cls = syms.alias_class(v);
    for (Resource r = 0; r < c.elements_.size(); ++r) {
      const auto& elem = c.elements_[r];
      const bool hit = std::any_of(cls.begin(), cls.end(), [&](lang::VarId a) {
        return std::binary_search(elem.begin(), elem.end(), a);
      });
      if (hit) c.access_sets_[v].push_back(r);
    }
    CTDF_ASSERT_MSG(!c.access_sets_[v].empty(),
                    "a cover must cover every variable");
  }
  return c;
}

std::vector<Resource> Cover::access_set_union(
    const std::vector<lang::VarId>& vars) const {
  std::vector<Resource> out;
  for (lang::VarId v : vars)
    out.insert(out.end(), access_sets_[v].begin(), access_sets_[v].end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Cover::eliminable(Resource r, const lang::SymbolTable& syms) const {
  const auto& elem = elements_[r];
  if (elem.size() != 1) return false;
  const lang::VarId v = elem.front();
  if (syms.is_array(v)) return false;
  if (syms.alias_class(v).size() != 1) return false;
  // The variable's access set must be exactly {r}: no other cover
  // element may cover it.
  return access_sets_[v].size() == 1 && access_sets_[v].front() == r;
}

lang::VarId Cover::singleton_var(Resource r) const {
  CTDF_ASSERT(elements_[r].size() == 1);
  return elements_[r].front();
}

std::string Cover::name(Resource r, const lang::SymbolTable& syms) const {
  std::string out = "{";
  for (std::size_t i = 0; i < elements_[r].size(); ++i) {
    if (i) out += ",";
    out += syms.name(elements_[r][i]);
  }
  return out + "}";
}

}  // namespace ctdf::translate
