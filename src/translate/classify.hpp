// Resource classification (paper Section 6): which cover elements get
// their memory operations eliminated (6.1), which arrays live in
// write-once I-structure regions (6.3), and which (loop, array) pairs
// qualify for Fig. 14 store parallelization.
//
// This is the `cover` stage of the staged pipeline (see stages.hpp): it
// consumes the cover and the loop forest and produces the per-resource
// classification the fused graph construction consults at every memory
// reference.
#pragma once

#include <cstddef>
#include <vector>

#include "cfg/graph.hpp"
#include "cfg/intervals.hpp"
#include "lang/symbols.hpp"
#include "support/diagnostics.hpp"
#include "translate/cover.hpp"
#include "translate/options.hpp"
#include "translate/translator.hpp"

namespace ctdf::translate {

struct ResourceClasses {
  std::vector<bool> eliminated;   ///< Sec. 6.1: value rides the token
  std::vector<bool> istructure;   ///< Sec. 6.3: write-once region
  /// Per loop (by LoopId index): resources whose stores are Fig. 14
  /// parallelized inside that loop.
  std::vector<std::vector<Resource>> marked;
  std::vector<IRegion> istructure_regions;
  std::size_t loops_store_parallelized = 0;  ///< Fig. 14 applications

  /// Is resource r "split" into (go, chain) tokens at node n — an
  /// I-structure everywhere, or a Fig. 14 array inside a marked loop?
  [[nodiscard]] bool split_at(const cfg::LoopInfo& loops, cfg::NodeId n,
                              Resource r) const;

  [[nodiscard]] std::size_t eliminated_count() const;
  [[nodiscard]] std::size_t istructure_count() const;
};

/// Classifies every cover element under `options`. Bad array
/// nominations (undeclared, aliased, jointly covered) are reported as
/// warnings to `diags` and ignored, exactly as the monolithic
/// translator did.
[[nodiscard]] ResourceClasses classify_resources(
    const lang::Program& prog, const TranslateOptions& options,
    const Cover& cover, const cfg::Graph& cfg, const cfg::LoopInfo& loops,
    const lang::StorageLayout& layout, support::DiagnosticEngine& diags);

}  // namespace ctdf::translate
