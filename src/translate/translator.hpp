// The control-flow → dataflow translator (the paper's contribution).
//
// One construction implements all of the paper's schemas, selected by
// TranslateOptions:
//
//  * Schema 1 (Sec. 2.3)  — options.sequential: a single access token
//    circulates along the sequential path (unified cover, no
//    per-iteration contexts, statement-internal read parallelism).
//  * Schema 2 (Sec. 3)    — singleton cover: one access token per
//    variable, loop-control nodes inserted by interval decomposition.
//  * Section 4 optimized  — options.optimize_switches: switch placement
//    by iterated control dependence (Fig. 10) and direct construction
//    from source vectors (Fig. 11); tokens bypass conditionals and
//    loops that do not reference them.
//  * Schema 3 (Sec. 5)    — options.cover: access tokens denote cover
//    elements; a memory operation collects its access set.
//  * Section 6 transforms — memory elimination (6.1), parallel reads
//    (6.2), Fig. 14 loop-store parallelization and I-structures (6.3).
//
// Construction walks the (loop-transformed) CFG once in reverse
// postorder, fusing the source-vector computation of Fig. 11 with
// wiring: each node consumes the accumulated token sources of its
// resources and propagates new sources to its successor — or, for a
// fork that needs no switch for a resource, directly to the fork's
// immediate postdominator (the bypass that Section 4 is about).
//
// One refinement beyond the paper's text (its loop-aware bypass
// generalization is only sketched there, deferred to a TR): a resource
// switched by any fork *inside* a loop must itself circulate through
// that loop's entry/exit nodes — otherwise the switch's data token
// (parent context) and predicate token (iteration context) could never
// rendezvous. We compute this as a fixpoint that enlarges loop
// reference sets until every switched resource is loop-resident.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfg/graph.hpp"
#include "lang/ast.hpp"
#include "support/diagnostics.hpp"
#include "translate/options.hpp"

namespace ctdf::translate {

/// A write-once (I-structure) region of the translated memory image.
struct IRegion {
  std::uint32_t base = 0;
  std::uint32_t extent = 0;
};

struct Translation {
  dfg::Graph graph;
  std::size_t memory_cells = 0;
  std::vector<IRegion> istructures;
  /// Updatable regions reachable under more than one program name (a
  /// storage-binding class with several members, from `bind`). The
  /// translator orders same-name accesses through acknowledgement
  /// edges; cross-name ordering flows through ordinary token edges, so
  /// the integrity checker's mem-latency spacing rule exempts these
  /// cells (machine/integrity.hpp).
  std::vector<IRegion> shared_cells;

  // Construction statistics (for the Fig. 9/10 and T-SIZE experiments).
  std::size_t num_resources = 0;
  std::size_t switches_placed = 0;
  std::size_t cfg_nodes = 0;
  std::size_t cfg_edges = 0;
  std::size_t loops = 0;
  int nodes_split = 0;
  std::size_t loops_store_parallelized = 0;  ///< Fig. 14 applications
  std::size_t post_opt_removed = 0;  ///< ops removed by dfg::optimize_graph
  std::size_t replicates_inserted = 0;  ///< fanout-lowering replicate nodes
  std::size_t dead_stores_removed = 0;  ///< liveness-based DSE (CFG level)
};

/// Translates `prog` under `options`. Frontend/structural problems are
/// reported to `diags`; on error the returned translation is partial
/// and must not be executed.
[[nodiscard]] Translation translate(const lang::Program& prog,
                                    const TranslateOptions& options,
                                    support::DiagnosticEngine& diags);

/// Convenience wrapper that throws support::CompileError on any error.
[[nodiscard]] Translation translate_or_throw(const lang::Program& prog,
                                             const TranslateOptions& options);

}  // namespace ctdf::translate
