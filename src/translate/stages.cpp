#include "translate/stages.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "cfg/build.hpp"
#include "cfg/control_dep.hpp"
#include "cfg/dataflow.hpp"
#include "cfg/dominance.hpp"
#include "cfg/intervals.hpp"
#include "cfg/ssa.hpp"
#include "dfg/pass_manager.hpp"
#include "dfg/passes.hpp"
#include "support/assert.hpp"
#include "translate/build_graph.hpp"
#include "translate/classify.hpp"
#include "translate/source_vectors.hpp"

namespace ctdf::translate {

const char* to_string(Stage s) {
  switch (s) {
    case Stage::kParse: return "parse";
    case Stage::kCfgBuild: return "cfg-build";
    case Stage::kDse: return "dse";
    case Stage::kLoopTransform: return "loop-transform";
    case Stage::kCover: return "cover";
    case Stage::kSsa: return "ssa";
    case Stage::kDominance: return "dominance";
    case Stage::kControlDep: return "control-dep";
    case Stage::kSwitchPlace: return "switch-place";
    case Stage::kTranslate: return "translate";
    case Stage::kOptimize: return "optimize";
    case Stage::kFanout: return "fanout";
    case Stage::kValidate: return "validate";
    case Stage::kLower: return "lower";
  }
  CTDF_UNREACHABLE("bad Stage");
}

const std::vector<Stage>& all_stages() {
  static const std::vector<Stage> stages = [] {
    std::vector<Stage> v;
    for (std::size_t i = 0; i < kNumStages; ++i)
      v.push_back(static_cast<Stage>(i));
    return v;
  }();
  return stages;
}

std::optional<Stage> stage_from_name(std::string_view name) {
  for (Stage s : all_stages())
    if (name == to_string(s)) return s;
  // Pre-pass-manager stage names, kept as aliases.
  if (name == "post-opt") return Stage::kOptimize;
  if (name == "fanout-lower") return Stage::kFanout;
  return std::nullopt;
}

std::int64_t StageRecord::counter(std::string_view name) const {
  for (const auto& [k, v] : counters)
    if (k == name) return v;
  return -1;
}

const StageRecord* PipelineTrace::find(Stage s) const {
  for (const StageRecord& r : stages)
    if (r.stage == s) return &r;
  return nullptr;
}

std::int64_t PipelineTrace::total_nanos() const {
  std::int64_t total = 0;
  for (const StageRecord& r : stages) total += r.nanos;
  return total;
}

std::string PipelineTrace::table() const {
  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof(line), "%-15s %10s %16s %7s  %s\n", "stage",
                "time(us)", "artifact", "delta", "stats");
  os << line;
  for (const StageRecord& r : stages) {
    if (!r.ran) {
      std::snprintf(line, sizeof(line), "%-15s %10s %16s %7s\n",
                    to_string(r.stage), "-", "-", "-");
      os << line;
      continue;
    }
    char size[32];
    std::snprintf(size, sizeof(size), "%zu -> %zu", r.size_in, r.size_out);
    const auto delta = static_cast<std::int64_t>(r.size_out) -
                       static_cast<std::int64_t>(r.size_in);
    char delta_s[16];
    std::snprintf(delta_s, sizeof(delta_s), "%+lld",
                  static_cast<long long>(delta));
    std::snprintf(line, sizeof(line), "%-15s %10.1f %16s %7s  ",
                  to_string(r.stage),
                  static_cast<double>(r.nanos) / 1000.0, size, delta_s);
    os << line;
    bool first = true;
    for (const auto& [k, v] : r.counters) {
      os << (first ? "" : " ") << k << "=" << v;
      first = false;
    }
    os << "\n";
  }
  std::snprintf(line, sizeof(line), "%-15s %10.1f\n", "total",
                static_cast<double>(total_nanos()) / 1000.0);
  os << line;
  return os.str();
}

std::string PipelineTrace::summary() const {
  std::ostringstream os;
  for (const StageRecord& r : stages) {
    os << to_string(r.stage);
    if (!r.ran) {
      os << ": skipped\n";
      continue;
    }
    os << ": " << r.size_in << " -> " << r.size_out;
    for (const auto& [k, v] : r.counters) os << " " << k << "=" << v;
    os << "\n";
  }
  return os.str();
}

void PipelineTrace::merge(const PipelineTrace& other) {
  for (const StageRecord& r : other.stages) {
    auto it = std::find_if(stages.begin(), stages.end(),
                           [&](const StageRecord& m) {
                             return m.stage == r.stage;
                           });
    if (it == stages.end()) {
      stages.push_back(r);
      continue;
    }
    it->ran = it->ran || r.ran;
    it->nanos += r.nanos;
    it->size_in += r.size_in;
    it->size_out += r.size_out;
    for (const auto& [k, v] : r.counters) {
      auto cit = std::find_if(it->counters.begin(), it->counters.end(),
                              [&](const auto& c) { return c.first == k; });
      if (cit == it->counters.end())
        it->counters.emplace_back(k, v);
      else
        cit->second += v;
    }
  }
}

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t nanos_since(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0)
      .count();
}

/// Reports records/dumps to the hooks (tolerating hooks == nullptr) and
/// tracks which stages have been reported so the tail can be marked
/// skipped on an early error exit.
class Reporter {
 public:
  explicit Reporter(StageHooks* hooks) : hooks_(hooks) {}

  void emit(StageRecord r) {
    reported_[static_cast<std::size_t>(r.stage)] = true;
    if (hooks_) hooks_->record(std::move(r));
  }

  void skip(Stage s) {
    StageRecord r;
    r.stage = s;
    r.ran = false;
    emit(std::move(r));
  }

  /// Marks every not-yet-reported stage as skipped (early error exit).
  void skip_rest() {
    for (Stage s : all_stages())
      if (!reported_[static_cast<std::size_t>(s)]) skip(s);
  }

  [[nodiscard]] bool wants_dump(Stage s) const {
    return hooks_ && hooks_->wants_dump(s);
  }
  void dump(Stage s, std::string artifact) {
    if (hooks_) hooks_->dump(s, std::move(artifact));
  }

 private:
  StageHooks* hooks_;
  bool reported_[kNumStages] = {};
};

std::string render_dominance(const cfg::Graph& cfg, const cfg::DomTree& dom) {
  std::ostringstream os;
  os << "postdominators (node: ipostdom)\n";
  for (cfg::NodeId n : cfg.all_nodes()) {
    os << "  " << n.index() << " [" << to_string(cfg.kind(n)) << "]: ";
    if (n == dom.root())
      os << "root";
    else
      os << dom.idom(n).index();
    os << "\n";
  }
  return os.str();
}

std::string render_control_deps(const cfg::Graph& cfg,
                                const cfg::ControlDeps& cd) {
  std::ostringstream os;
  os << "control dependence (node: fork/direction ...)\n";
  for (cfg::NodeId n : cfg.all_nodes()) {
    os << "  " << n.index() << " [" << to_string(cfg.kind(n)) << "]:";
    for (const cfg::ControlDep& d : cd.deps(n))
      os << " " << d.fork.index() << "/" << (d.direction ? "T" : "F");
    os << "\n";
  }
  return os.str();
}

std::string render_cover(const lang::Program& prog, const Cover& cover,
                         const ResourceClasses& classes) {
  std::ostringstream os;
  os << "cover elements (resource: variables [classification])\n";
  for (Resource r = 0; r < cover.size(); ++r) {
    os << "  " << r << ": " << cover.name(r, prog.symbols);
    if (classes.eliminated[r]) os << " [mem-elim]";
    if (classes.istructure[r]) os << " [istructure]";
    os << "\n";
  }
  os << "fig14 store-parallelized loops: "
     << classes.loops_store_parallelized << "\n";
  return os.str();
}

std::string render_ssa(const lang::Program& prog, const cfg::Graph& cfg,
                       const cfg::PhiPlacement& minimal,
                       const cfg::PhiPlacement& pruned) {
  std::ostringstream os;
  os << "phi placement (node: minimal | pruned)\n";
  for (cfg::NodeId n : cfg.all_nodes()) {
    if (minimal.phis[n].empty() && pruned.phis[n].empty()) continue;
    os << "  " << n.index() << ":";
    for (lang::VarId v : minimal.phis[n]) os << " " << prog.symbols.name(v);
    os << " |";
    for (lang::VarId v : pruned.phis[n]) os << " " << prog.symbols.name(v);
    os << "\n";
  }
  os << "total: minimal=" << minimal.total << " pruned=" << pruned.total
     << "\n";
  return os.str();
}

std::string render_switch_place(const cfg::Graph& cfg,
                                const lang::Program& prog, const Cover& cover,
                                const SourceVectors& sv,
                                std::size_t num_res) {
  std::ostringstream os;
  os << "switch placement (fork: resources)\n";
  for (cfg::NodeId n : cfg.all_nodes()) {
    if (cfg.kind(n) != cfg::NodeKind::kFork) continue;
    os << "  " << n.index() << ":";
    for (Resource r = 0; r < num_res; ++r)
      if (sv.placement.needs_switch(n, r))
        os << " " << cover.name(r, prog.symbols);
    os << "\n";
  }
  return os.str();
}

std::size_t count_edges(const cfg::Graph& cfg) {
  std::size_t edges = 0;
  for (cfg::NodeId n : cfg.all_nodes()) edges += cfg.succs(n).size();
  return edges;
}

}  // namespace

Translation run_stages(const lang::Program& prog,
                       const TranslateOptions& options,
                       support::DiagnosticEngine& diags, StageHooks* hooks,
                       const StageSet& set) {
  const TranslateOptions opt = options.normalized();
  Translation result;
  Reporter rep(hooks);

  // --- cfg-build ------------------------------------------------------
  auto t0 = Clock::now();
  cfg::Graph cfg = cfg::build_cfg(prog, diags);
  {
    StageRecord r;
    r.stage = Stage::kCfgBuild;
    r.ran = true;
    r.nanos = nanos_since(t0);
    r.size_out = cfg.size();
    r.counters = {{"nodes", static_cast<std::int64_t>(cfg.size())},
                  {"edges", static_cast<std::int64_t>(count_edges(cfg))}};
    rep.emit(std::move(r));
  }
  if (diags.has_errors()) {
    rep.skip_rest();
    return result;
  }
  if (rep.wants_dump(Stage::kCfgBuild))
    rep.dump(Stage::kCfgBuild, cfg.to_dot(prog.symbols));

  // --- dse ------------------------------------------------------------
  if (opt.dead_store_elimination) {
    t0 = Clock::now();
    result.dead_stores_removed = cfg::eliminate_dead_stores(cfg, prog.symbols);
    StageRecord r;
    r.stage = Stage::kDse;
    r.ran = true;
    r.nanos = nanos_since(t0);
    r.size_in = r.size_out = cfg.size();
    r.counters = {
        {"removed", static_cast<std::int64_t>(result.dead_stores_removed)}};
    rep.emit(std::move(r));
    if (rep.wants_dump(Stage::kDse))
      rep.dump(Stage::kDse, cfg.to_dot(prog.symbols));
  } else {
    rep.skip(Stage::kDse);
  }
  result.cfg_nodes = cfg.size();
  result.cfg_edges = count_edges(cfg);

  // --- loop-transform -------------------------------------------------
  cfg::LoopInfo loops;
  if (!opt.sequential) {
    const std::size_t before = cfg.size();
    t0 = Clock::now();
    loops = cfg::transform_loops(cfg, diags);
    StageRecord r;
    r.stage = Stage::kLoopTransform;
    r.ran = true;
    r.nanos = nanos_since(t0);
    r.size_in = before;
    r.size_out = cfg.size();
    r.counters = {
        {"loops", static_cast<std::int64_t>(loops.loops().size())},
        {"nodes-split", loops.nodes_split()}};
    rep.emit(std::move(r));
    if (diags.has_errors()) {
      rep.skip_rest();
      return result;
    }
    result.loops = loops.loops().size();
    result.nodes_split = loops.nodes_split();
    if (rep.wants_dump(Stage::kLoopTransform))
      rep.dump(Stage::kLoopTransform, cfg.to_dot(prog.symbols));
  } else {
    rep.skip(Stage::kLoopTransform);
  }

  // --- cover (cover assignment + resource classification) -------------
  t0 = Clock::now();
  const lang::StorageLayout layout(prog.symbols);
  const Cover cover = Cover::make(prog.symbols, opt.cover);
  const std::size_t num_res = cover.size();
  result.num_resources = num_res;
  const ResourceClasses classes =
      classify_resources(prog, opt, cover, cfg, loops, layout, diags);
  result.istructures = classes.istructure_regions;
  result.loops_store_parallelized = classes.loops_store_parallelized;
  {
    StageRecord r;
    r.stage = Stage::kCover;
    r.ran = true;
    r.nanos = nanos_since(t0);
    r.size_out = num_res;
    r.counters = {
        {"resources", static_cast<std::int64_t>(num_res)},
        {"eliminated", static_cast<std::int64_t>(classes.eliminated_count())},
        {"istructures",
         static_cast<std::int64_t>(classes.istructure_count())},
        {"fig14-loops",
         static_cast<std::int64_t>(classes.loops_store_parallelized)}};
    rep.emit(std::move(r));
  }
  if (rep.wants_dump(Stage::kCover))
    rep.dump(Stage::kCover, render_cover(prog, cover, classes));

  // --- ssa (reporting only; never affects the produced graph) ---------
  if (set.ssa) {
    t0 = Clock::now();
    const cfg::PhiPlacement minimal =
        cfg::place_phis(cfg, prog.symbols, /*pruned=*/false);
    const cfg::PhiPlacement pruned =
        cfg::place_phis(cfg, prog.symbols, /*pruned=*/true);
    StageRecord r;
    r.stage = Stage::kSsa;
    r.ran = true;
    r.nanos = nanos_since(t0);
    r.size_in = r.size_out = cfg.size();
    r.counters = {
        {"phis-minimal", static_cast<std::int64_t>(minimal.total)},
        {"phis-pruned", static_cast<std::int64_t>(pruned.total)}};
    rep.emit(std::move(r));
    if (rep.wants_dump(Stage::kSsa))
      rep.dump(Stage::kSsa, render_ssa(prog, cfg, minimal, pruned));
  } else {
    rep.skip(Stage::kSsa);
  }

  // --- dominance ------------------------------------------------------
  t0 = Clock::now();
  const cfg::DomTree pdom(cfg, cfg::DomDirection::kPostdom);
  {
    StageRecord r;
    r.stage = Stage::kDominance;
    r.ran = true;
    r.nanos = nanos_since(t0);
    r.size_in = r.size_out = cfg.size();
    rep.emit(std::move(r));
  }
  if (rep.wants_dump(Stage::kDominance))
    rep.dump(Stage::kDominance, render_dominance(cfg, pdom));

  // --- control-dep ----------------------------------------------------
  t0 = Clock::now();
  const cfg::ControlDeps cd(cfg, pdom);
  {
    std::size_t deps = 0;
    for (cfg::NodeId n : cfg.all_nodes()) deps += cd.deps(n).size();
    StageRecord r;
    r.stage = Stage::kControlDep;
    r.ran = true;
    r.nanos = nanos_since(t0);
    r.size_in = r.size_out = cfg.size();
    r.counters = {{"deps", static_cast<std::int64_t>(deps)}};
    rep.emit(std::move(r));
  }
  if (rep.wants_dump(Stage::kControlDep))
    rep.dump(Stage::kControlDep, render_control_deps(cfg, cd));

  // --- switch-place (source vectors + Fig. 10 fixpoint) ---------------
  t0 = Clock::now();
  const SourceVectors sv = compute_source_vectors(
      cfg, loops, cover, cd, num_res, opt.optimize_switches);
  result.switches_placed = sv.placement.total();
  {
    StageRecord r;
    r.stage = Stage::kSwitchPlace;
    r.ran = true;
    r.nanos = nanos_since(t0);
    r.size_in = r.size_out = cfg.size();
    r.counters = {
        {"switches", static_cast<std::int64_t>(result.switches_placed)},
        {"rounds", static_cast<std::int64_t>(sv.fixpoint_rounds)}};
    rep.emit(std::move(r));
  }
  if (rep.wants_dump(Stage::kSwitchPlace))
    rep.dump(Stage::kSwitchPlace,
             render_switch_place(cfg, prog, cover, sv, num_res));

  // --- translate (fused Fig. 11 construction) -------------------------
  t0 = Clock::now();
  detail::build_graph(prog, opt, diags, layout, cfg, loops, cover, classes,
                      sv, pdom, result);
  {
    StageRecord r;
    r.stage = Stage::kTranslate;
    r.ran = true;
    r.nanos = nanos_since(t0);
    r.size_in = cfg.size();
    r.size_out = result.graph.num_nodes();
    r.counters = {
        {"nodes", static_cast<std::int64_t>(result.graph.num_nodes())},
        {"arcs", static_cast<std::int64_t>(result.graph.num_arcs())}};
    rep.emit(std::move(r));
  }
  if (diags.has_errors()) {
    rep.skip_rest();
    return result;
  }
  if (rep.wants_dump(Stage::kTranslate))
    rep.dump(Stage::kTranslate, result.graph.to_dot());

  // --- optimize (the dfg pass manager) --------------------------------
  if (opt.post_optimize && opt.opt_passes.any()) {
    const std::size_t before = result.graph.num_nodes();
    t0 = Clock::now();
    const dfg::OptStats ps =
        dfg::run_passes(result.graph, opt.opt_passes, opt.fuse_limit);
    result.post_opt_removed = ps.nodes_removed;
    StageRecord r;
    r.stage = Stage::kOptimize;
    r.ran = true;
    r.nanos = nanos_since(t0);
    r.size_in = before;
    r.size_out = result.graph.num_nodes();
    r.counters = {
        {"removed", static_cast<std::int64_t>(ps.nodes_removed)},
        {"switches-folded", static_cast<std::int64_t>(ps.switches_folded)},
        {"merges-collapsed",
         static_cast<std::int64_t>(ps.merges_collapsed)},
        {"dead", static_cast<std::int64_t>(ps.dead_removed)},
        {"unfireable", static_cast<std::int64_t>(ps.unfireable_removed)},
        {"const-folded", static_cast<std::int64_t>(ps.consts_folded)},
        {"switch-elim", static_cast<std::int64_t>(ps.switches_elim)},
        {"synch-narrowed", static_cast<std::int64_t>(ps.synchs_narrowed)},
        {"iterations", static_cast<std::int64_t>(ps.iterations)},
        {"max-loop-depth", static_cast<std::int64_t>(ps.max_loop_depth)}};
    if (opt.opt_passes.enabled(dfg::PassId::kFuse)) {
      r.counters.emplace_back("chains-fused",
                              static_cast<std::int64_t>(ps.chains_fused));
      r.counters.emplace_back("fused-ops",
                              static_cast<std::int64_t>(ps.ops_fused));
      for (std::size_t i = 0; i < 6; ++i)
        r.counters.emplace_back(
            "fused-len-" + std::to_string(i + 2),
            static_cast<std::int64_t>(ps.fused_len_hist[i]));
      r.counters.emplace_back(
          "fused-len-8plus", static_cast<std::int64_t>(ps.fused_len_hist[6]));
    }
    rep.emit(std::move(r));
    if (rep.wants_dump(Stage::kOptimize))
      rep.dump(Stage::kOptimize, result.graph.to_dot());
  } else {
    rep.skip(Stage::kOptimize);
  }

  // --- fanout (replication-tree lowering) -----------------------------
  if (opt.max_fanout >= 2) {
    const std::size_t before = result.graph.num_nodes();
    t0 = Clock::now();
    result.replicates_inserted =
        dfg::lower_fanout(result.graph, opt.max_fanout);
    StageRecord r;
    r.stage = Stage::kFanout;
    r.ran = true;
    r.nanos = nanos_since(t0);
    r.size_in = before;
    r.size_out = result.graph.num_nodes();
    r.counters = {{"replicates",
                   static_cast<std::int64_t>(result.replicates_inserted)}};
    rep.emit(std::move(r));
    if (rep.wants_dump(Stage::kFanout))
      rep.dump(Stage::kFanout, result.graph.to_dot());
  } else {
    rep.skip(Stage::kFanout);
  }

  result.memory_cells = layout.total_cells();

  // Record the bind-shared regions: one entry per storage-binding class
  // with several members, keyed by its representative so each range is
  // reported once.
  for (const lang::VarId v : prog.symbols.all_vars()) {
    if (prog.symbols.bind_root(v) != v) continue;
    std::size_t members = 0;
    for (const lang::VarId w : prog.symbols.all_vars())
      if (prog.symbols.same_storage(v, w)) ++members;
    if (members > 1)
      result.shared_cells.push_back(
          {static_cast<std::uint32_t>(layout.base(v)),
           static_cast<std::uint32_t>(layout.extent(v))});
  }

  // --- validate -------------------------------------------------------
  if (set.validate) {
    t0 = Clock::now();
    const auto problems = result.graph.validate();
    for (const auto& problem : problems)
      diags.error({}, "DFG validation: " + problem);
    StageRecord r;
    r.stage = Stage::kValidate;
    r.ran = true;
    r.nanos = nanos_since(t0);
    r.size_in = r.size_out = result.graph.num_nodes();
    r.counters = {{"problems", static_cast<std::int64_t>(problems.size())}};
    rep.emit(std::move(r));
    if (rep.wants_dump(Stage::kValidate))
      rep.dump(Stage::kValidate, result.graph.to_dot());
  } else {
    rep.skip(Stage::kValidate);
  }

  return result;
}

}  // namespace ctdf::translate
