// Subscript analysis for array-store parallelization (paper Section
// 6.3, which defers to standard disambiguation techniques [16]).
//
// We recognize affine subscripts `c*i + d` (c, d integer constants,
// c ≠ 0) in a *simple induction variable* i of the enclosing loop: an
// unaliased scalar assigned exactly once inside the loop, as
// i := i ± step with a non-zero constant step. Two different iterations
// then compute subscripts that differ by c·step ≠ 0, so the stores are
// independent and Fig. 14's token-duplication transform applies.
//
// Caveat (documented contract of the transform): subscripts wrap modulo
// the array extent at run time, so iterations more than extent/(c·step)
// apart can still collide; the transform is applied only to arrays the
// user nominates (TranslateOptions::parallel_store_arrays), with this
// analysis as the safety net — exactly the paper's division of labor
// between dependence analysis and program knowledge.
#pragma once

#include <optional>

#include "cfg/graph.hpp"
#include "cfg/intervals.hpp"
#include "lang/ast.hpp"

namespace ctdf::translate {

/// An affine form c·var + d.
struct Affine {
  lang::VarId var;
  std::int64_t coeff = 0;
  std::int64_t offset = 0;
};

/// Matches `expr` against c·v + d (commuted/nested +,-,* with constant
/// leaves; unary minus supported). Returns nullopt for anything else,
/// including c == 0 and expressions referencing more than one variable.
[[nodiscard]] std::optional<Affine> match_affine(const lang::Expr& expr);

/// Is `v` a simple induction variable of `loop`: unaliased scalar,
/// assigned exactly once among the loop's members, in the form
/// v := v ± step (constant step ≠ 0)? Returns the signed step.
[[nodiscard]] std::optional<std::int64_t> induction_step(
    const cfg::Graph& g, const cfg::Loop& loop, lang::VarId v,
    const lang::SymbolTable& syms);

/// Full Fig. 14 qualification: inside `loop`, array `a` is only ever
/// stored to (never read by any member's rhs, subscript, or predicate),
/// and every store's subscript is affine in a simple induction variable
/// of the loop.
[[nodiscard]] bool stores_parallelizable(const cfg::Graph& g,
                                         const cfg::Loop& loop,
                                         lang::VarId a,
                                         const lang::SymbolTable& syms);

}  // namespace ctdf::translate
