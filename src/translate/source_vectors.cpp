#include "translate/source_vectors.hpp"

#include <algorithm>
#include <optional>

#include "support/assert.hpp"

namespace ctdf::translate {

SourceVectors compute_source_vectors(const cfg::Graph& cfg,
                                     const cfg::LoopInfo& loops,
                                     const Cover& cover,
                                     const cfg::ControlDeps& cd,
                                     std::size_t num_resources,
                                     bool optimize_switches) {
  using cfg::NodeId;

  SourceVectors sv;
  sv.uses.resize(cfg.size());
  for (NodeId n : cfg.all_nodes()) {
    const cfg::NodeKind k = cfg.kind(n);
    if (k == cfg::NodeKind::kAssign || k == cfg::NodeKind::kFork)
      sv.uses[n] = cover.access_set_union(cfg.refs(n));
  }

  // Per-loop resource sets.
  std::vector<std::vector<Resource>> loop_res(loops.loops().size());
  const auto all_resources = [&] {
    std::vector<Resource> rs(num_resources);
    for (Resource r = 0; r < num_resources; ++r) rs[r] = r;
    return rs;
  };
  for (const cfg::Loop& loop : loops.loops()) {
    loop_res[loop.id.index()] =
        optimize_switches
            ? cover.access_set_union(loops.used_vars(cfg, loop.id))
            : all_resources();
  }

  std::optional<SwitchPlacement> placement;
  for (int iteration = 0;; ++iteration) {
    CTDF_ASSERT_MSG(iteration <= static_cast<int>(num_resources) + 2,
                    "loop-refs fixpoint failed to converge");
    for (const cfg::Loop& loop : loops.loops()) {
      sv.uses[loop.entry] = loop_res[loop.id.index()];
      for (NodeId x : loop.exits) sv.uses[x] = loop_res[loop.id.index()];
    }
    placement.emplace(cfg, cd, sv.uses, num_resources, optimize_switches);
    ++sv.fixpoint_rounds;
    if (!optimize_switches) break;

    bool changed = false;
    for (const cfg::Loop& loop : loops.loops()) {
      auto& res = loop_res[loop.id.index()];
      for (NodeId n : loop.members) {
        if (cfg.kind(n) != cfg::NodeKind::kFork) continue;
        for (Resource r = 0; r < num_resources; ++r) {
          if (placement->needs_switch(n, r) &&
              std::find(res.begin(), res.end(), r) == res.end()) {
            res.push_back(r);
            changed = true;
          }
        }
      }
      std::sort(res.begin(), res.end());
    }
    if (!changed) break;
  }
  sv.placement = std::move(*placement);
  return sv;
}

}  // namespace ctdf::translate
