// Covers of an alias structure (paper Section 5, Definition 7).
//
// An access token denotes a *cover element* — a subset of the variable
// set V. A memory operation on x must collect every token access_c with
// c ∩ [x] ≠ ∅ (the access set C[x]). The choice of cover trades
// parallelism against synchronization:
//
//  * kSingleton — one element {x} per variable: maximum parallelism,
//    but an operation on x collects |[x]| tokens (more synchronization
//    under heavy aliasing). With no aliasing this degenerates to the
//    paper's Schema 2.
//  * kAliasClass — one element [x] per distinct alias class: operations
//    collect fewer tokens, but unaliased variables that share a class
//    member serialize.
//  * kComponent — one element per connected component of the alias
//    graph. Every access set has exactly one element (no collection
//    synch trees at all — the cover that minimizes synchronization),
//    while variables in different components still run in parallel.
//  * kUnified — the single element V: exactly one token, minimal
//    synchronization, fully sequential memory access. Combined with
//    within-statement parallel reads this is the paper's Schema 1.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lang/symbols.hpp"

namespace ctdf::translate {

enum class CoverStrategy : std::uint8_t {
  kSingleton,
  kAliasClass,
  kComponent,
  kUnified,
};

[[nodiscard]] const char* to_string(CoverStrategy s);

/// Resources are cover-element indices.
using Resource = std::size_t;

class Cover {
 public:
  static Cover make(const lang::SymbolTable& syms, CoverStrategy strategy);

  [[nodiscard]] std::size_t size() const { return elements_.size(); }

  /// The variables of one cover element (sorted).
  [[nodiscard]] const std::vector<lang::VarId>& element(Resource r) const {
    return elements_[r];
  }

  /// The access set C[x]: resources whose element intersects [x]
  /// (sorted).
  [[nodiscard]] const std::vector<Resource>& access_set(lang::VarId v) const {
    return access_sets_[v];
  }

  /// Union of access sets over several variables (sorted, deduped).
  [[nodiscard]] std::vector<Resource> access_set_union(
      const std::vector<lang::VarId>& vars) const;

  /// True iff r is a single unaliased scalar — the precondition for
  /// eliminating its memory operations entirely (paper Section 6.1).
  [[nodiscard]] bool eliminable(Resource r,
                                const lang::SymbolTable& syms) const;

  /// The variable of a singleton element (asserts |element| == 1).
  [[nodiscard]] lang::VarId singleton_var(Resource r) const;

  /// Debug name, e.g. "{x,z}".
  [[nodiscard]] std::string name(Resource r,
                                 const lang::SymbolTable& syms) const;

 private:
  std::vector<std::vector<lang::VarId>> elements_;
  support::IndexMap<lang::VarId, std::vector<Resource>> access_sets_;
};

}  // namespace ctdf::translate
