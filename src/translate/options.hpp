// Translation configuration: which schema of the paper to apply.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dfg/pass_manager.hpp"
#include "translate/cover.hpp"

namespace ctdf::translate {

struct TranslateOptions {
  /// Schema 1 (Section 2.3): a single access token circulates along the
  /// sequential execution path; loads within a statement proceed in
  /// parallel but statements execute one at a time. Implies
  /// cover = kUnified, no per-iteration contexts, parallel reads, and
  /// switches/merges at every fork/join.
  bool sequential = false;

  /// Cover choice (Section 5). kSingleton with no aliasing is Schema 2;
  /// anything else is Schema 3 parameterized by the cover.
  CoverStrategy cover = CoverStrategy::kSingleton;

  /// Section 4: place switches only where needed (Figs 10 and 11) and
  /// let access tokens bypass conditionals and loops that do not
  /// reference their variables. Off = the naive Schema 2/3 placement
  /// (every fork switches every token; every join merges every token;
  /// loop control collects the complete token set).
  bool optimize_switches = false;

  /// Section 6.1: pass unaliased scalar values on tokens; delete their
  /// loads and stores (the SSA-like "functional" transformation).
  bool eliminate_memory = false;

  /// Section 6.2: replicate the access token to all reads of a resource
  /// within a statement and collect with a synch tree, instead of
  /// chaining reads sequentially.
  bool parallel_reads = false;

  /// Section 6.3 / Fig 14: arrays (by name) whose loop stores should be
  /// parallelized by access-token duplication + completion chain.
  /// Applied in every loop where the array is stored to but never read
  /// and not aliased; other occurrences are translated normally.
  std::vector<std::string> parallel_store_arrays;

  /// CFG-level dead-store elimination before translation: assignments
  /// to unaliased scalars that are overwritten (on every path) before
  /// any read — and before `end`, which observes the final store — are
  /// dropped. Classic liveness-based cleanup; see cfg/dataflow.hpp.
  bool dead_store_elimination = false;

  /// Run the dfg pass manager's `optimize` stage after construction.
  /// `--post-opt` enables the cleanup passes; `--opt=<list|all|none>`
  /// selects passes individually (and implies enabling the stage unless
  /// the set is empty).
  bool post_optimize = false;

  /// Which optimizer passes the `optimize` stage runs when
  /// post_optimize is set (dfg::PassSet; default = every cleanup pass,
  /// no fusion — the historical `--post-opt` meaning).
  dfg::PassSet opt_passes = dfg::PassSet::cleanup();

  /// Macro-op fusion: maximum ops per fused chain (`--fuse-limit=N`,
  /// N ≥ 2; chains longer than this split into several macros).
  std::size_t fuse_limit = dfg::kDefaultFuseLimit;

  /// Monsoon fidelity: bound each operator output to this many
  /// destination arcs by inserting replicate trees (0 = unlimited, the
  /// abstract-IR default; Monsoon itself allows 2).
  std::size_t max_fanout = 0;

  /// Section 6.3: arrays (by name) asserted write-once; translated to
  /// I-structure operations (reads and writes proceed concurrently,
  /// reads of empty cells defer in memory). The machine traps a double
  /// write, so a wrong assertion is detected, not silently miscompiled.
  std::vector<std::string> istructure_arrays;

  /// Paper-facing presets.
  static TranslateOptions schema1() {
    TranslateOptions o;
    o.sequential = true;
    return o;
  }
  static TranslateOptions schema2() { return {}; }
  static TranslateOptions schema2_optimized() {
    TranslateOptions o;
    o.optimize_switches = true;
    return o;
  }
  static TranslateOptions schema3(CoverStrategy cover) {
    TranslateOptions o;
    o.cover = cover;
    return o;
  }

  [[nodiscard]] std::string describe() const;

  /// The options as the translator actually applies them: Schema 1
  /// (sequential) forces the unified cover, disables switch optimization
  /// and memory elimination, enables within-statement parallel reads,
  /// and drops the array transforms. Idempotent.
  [[nodiscard]] TranslateOptions normalized() const;
};

/// Result of feeding one command-line token to apply_schema_flag.
enum class SchemaFlagParse : std::uint8_t {
  kNotSchemaFlag,  ///< not a schema option; try other option families
  kApplied,        ///< recognized and applied to the options
  kBadValue,       ///< recognized but the value is malformed
};

/// The one parser for schema-selection flags, shared by the `ctdf` CLI
/// and the bench harnesses: "--schema1", "--no-opt", "--cover=...",
/// "--mem-elim", "--dse", "--post-opt", "--opt=<pass,list|all|none>",
/// "--fuse-limit=N", "--max-fanout=N" (0 or ≥ 2), "--par-reads",
/// "--fig14=a,b", "--istructure=a,b".
SchemaFlagParse apply_schema_flag(TranslateOptions& o, std::string_view arg);

/// Splits "a,b,c" into {"a","b","c"} (empty items dropped); used for
/// the list-valued schema flags and the CLI's --print.
[[nodiscard]] std::vector<std::string> split_csv(const std::string& s);

}  // namespace ctdf::translate
