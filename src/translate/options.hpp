// Translation configuration: which schema of the paper to apply.
#pragma once

#include <string>
#include <vector>

#include "translate/cover.hpp"

namespace ctdf::translate {

struct TranslateOptions {
  /// Schema 1 (Section 2.3): a single access token circulates along the
  /// sequential execution path; loads within a statement proceed in
  /// parallel but statements execute one at a time. Implies
  /// cover = kUnified, no per-iteration contexts, parallel reads, and
  /// switches/merges at every fork/join.
  bool sequential = false;

  /// Cover choice (Section 5). kSingleton with no aliasing is Schema 2;
  /// anything else is Schema 3 parameterized by the cover.
  CoverStrategy cover = CoverStrategy::kSingleton;

  /// Section 4: place switches only where needed (Figs 10 and 11) and
  /// let access tokens bypass conditionals and loops that do not
  /// reference their variables. Off = the naive Schema 2/3 placement
  /// (every fork switches every token; every join merges every token;
  /// loop control collects the complete token set).
  bool optimize_switches = false;

  /// Section 6.1: pass unaliased scalar values on tokens; delete their
  /// loads and stores (the SSA-like "functional" transformation).
  bool eliminate_memory = false;

  /// Section 6.2: replicate the access token to all reads of a resource
  /// within a statement and collect with a synch tree, instead of
  /// chaining reads sequentially.
  bool parallel_reads = false;

  /// Section 6.3 / Fig 14: arrays (by name) whose loop stores should be
  /// parallelized by access-token duplication + completion chain.
  /// Applied in every loop where the array is stored to but never read
  /// and not aliased; other occurrences are translated normally.
  std::vector<std::string> parallel_store_arrays;

  /// CFG-level dead-store elimination before translation: assignments
  /// to unaliased scalars that are overwritten (on every path) before
  /// any read — and before `end`, which observes the final store — are
  /// dropped. Classic liveness-based cleanup; see cfg/dataflow.hpp.
  bool dead_store_elimination = false;

  /// Run the dfg::optimize_graph post-passes (constant-switch folding,
  /// dead/unfireable node elimination, single-source merge collapsing)
  /// after construction.
  bool post_optimize = false;

  /// Monsoon fidelity: bound each operator output to this many
  /// destination arcs by inserting replicate trees (0 = unlimited, the
  /// abstract-IR default; Monsoon itself allows 2).
  std::size_t max_fanout = 0;

  /// Section 6.3: arrays (by name) asserted write-once; translated to
  /// I-structure operations (reads and writes proceed concurrently,
  /// reads of empty cells defer in memory). The machine traps a double
  /// write, so a wrong assertion is detected, not silently miscompiled.
  std::vector<std::string> istructure_arrays;

  /// Paper-facing presets.
  static TranslateOptions schema1() {
    TranslateOptions o;
    o.sequential = true;
    return o;
  }
  static TranslateOptions schema2() { return {}; }
  static TranslateOptions schema2_optimized() {
    TranslateOptions o;
    o.optimize_switches = true;
    return o;
  }
  static TranslateOptions schema3(CoverStrategy cover) {
    TranslateOptions o;
    o.cover = cover;
    return o;
  }

  [[nodiscard]] std::string describe() const;
};

}  // namespace ctdf::translate
