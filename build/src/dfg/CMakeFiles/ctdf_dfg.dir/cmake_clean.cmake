file(REMOVE_RECURSE
  "CMakeFiles/ctdf_dfg.dir/asmfmt.cpp.o"
  "CMakeFiles/ctdf_dfg.dir/asmfmt.cpp.o.d"
  "CMakeFiles/ctdf_dfg.dir/graph.cpp.o"
  "CMakeFiles/ctdf_dfg.dir/graph.cpp.o.d"
  "CMakeFiles/ctdf_dfg.dir/passes.cpp.o"
  "CMakeFiles/ctdf_dfg.dir/passes.cpp.o.d"
  "libctdf_dfg.a"
  "libctdf_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctdf_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
