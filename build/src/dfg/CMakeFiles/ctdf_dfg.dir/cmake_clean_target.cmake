file(REMOVE_RECURSE
  "libctdf_dfg.a"
)
