
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfg/asmfmt.cpp" "src/dfg/CMakeFiles/ctdf_dfg.dir/asmfmt.cpp.o" "gcc" "src/dfg/CMakeFiles/ctdf_dfg.dir/asmfmt.cpp.o.d"
  "/root/repo/src/dfg/graph.cpp" "src/dfg/CMakeFiles/ctdf_dfg.dir/graph.cpp.o" "gcc" "src/dfg/CMakeFiles/ctdf_dfg.dir/graph.cpp.o.d"
  "/root/repo/src/dfg/passes.cpp" "src/dfg/CMakeFiles/ctdf_dfg.dir/passes.cpp.o" "gcc" "src/dfg/CMakeFiles/ctdf_dfg.dir/passes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/ctdf_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/ctdf_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ctdf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
