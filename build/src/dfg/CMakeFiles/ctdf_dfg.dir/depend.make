# Empty dependencies file for ctdf_dfg.
# This may be replaced when dependencies are built.
