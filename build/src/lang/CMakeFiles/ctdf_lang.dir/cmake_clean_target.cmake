file(REMOVE_RECURSE
  "libctdf_lang.a"
)
