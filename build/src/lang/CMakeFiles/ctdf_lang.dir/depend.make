# Empty dependencies file for ctdf_lang.
# This may be replaced when dependencies are built.
