
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/ast.cpp" "src/lang/CMakeFiles/ctdf_lang.dir/ast.cpp.o" "gcc" "src/lang/CMakeFiles/ctdf_lang.dir/ast.cpp.o.d"
  "/root/repo/src/lang/builder.cpp" "src/lang/CMakeFiles/ctdf_lang.dir/builder.cpp.o" "gcc" "src/lang/CMakeFiles/ctdf_lang.dir/builder.cpp.o.d"
  "/root/repo/src/lang/corpus.cpp" "src/lang/CMakeFiles/ctdf_lang.dir/corpus.cpp.o" "gcc" "src/lang/CMakeFiles/ctdf_lang.dir/corpus.cpp.o.d"
  "/root/repo/src/lang/generator.cpp" "src/lang/CMakeFiles/ctdf_lang.dir/generator.cpp.o" "gcc" "src/lang/CMakeFiles/ctdf_lang.dir/generator.cpp.o.d"
  "/root/repo/src/lang/interp.cpp" "src/lang/CMakeFiles/ctdf_lang.dir/interp.cpp.o" "gcc" "src/lang/CMakeFiles/ctdf_lang.dir/interp.cpp.o.d"
  "/root/repo/src/lang/lexer.cpp" "src/lang/CMakeFiles/ctdf_lang.dir/lexer.cpp.o" "gcc" "src/lang/CMakeFiles/ctdf_lang.dir/lexer.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/lang/CMakeFiles/ctdf_lang.dir/parser.cpp.o" "gcc" "src/lang/CMakeFiles/ctdf_lang.dir/parser.cpp.o.d"
  "/root/repo/src/lang/subroutines.cpp" "src/lang/CMakeFiles/ctdf_lang.dir/subroutines.cpp.o" "gcc" "src/lang/CMakeFiles/ctdf_lang.dir/subroutines.cpp.o.d"
  "/root/repo/src/lang/symbols.cpp" "src/lang/CMakeFiles/ctdf_lang.dir/symbols.cpp.o" "gcc" "src/lang/CMakeFiles/ctdf_lang.dir/symbols.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ctdf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
