file(REMOVE_RECURSE
  "CMakeFiles/ctdf_lang.dir/ast.cpp.o"
  "CMakeFiles/ctdf_lang.dir/ast.cpp.o.d"
  "CMakeFiles/ctdf_lang.dir/builder.cpp.o"
  "CMakeFiles/ctdf_lang.dir/builder.cpp.o.d"
  "CMakeFiles/ctdf_lang.dir/corpus.cpp.o"
  "CMakeFiles/ctdf_lang.dir/corpus.cpp.o.d"
  "CMakeFiles/ctdf_lang.dir/generator.cpp.o"
  "CMakeFiles/ctdf_lang.dir/generator.cpp.o.d"
  "CMakeFiles/ctdf_lang.dir/interp.cpp.o"
  "CMakeFiles/ctdf_lang.dir/interp.cpp.o.d"
  "CMakeFiles/ctdf_lang.dir/lexer.cpp.o"
  "CMakeFiles/ctdf_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/ctdf_lang.dir/parser.cpp.o"
  "CMakeFiles/ctdf_lang.dir/parser.cpp.o.d"
  "CMakeFiles/ctdf_lang.dir/subroutines.cpp.o"
  "CMakeFiles/ctdf_lang.dir/subroutines.cpp.o.d"
  "CMakeFiles/ctdf_lang.dir/symbols.cpp.o"
  "CMakeFiles/ctdf_lang.dir/symbols.cpp.o.d"
  "libctdf_lang.a"
  "libctdf_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctdf_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
