# Empty dependencies file for ctdf_machine.
# This may be replaced when dependencies are built.
