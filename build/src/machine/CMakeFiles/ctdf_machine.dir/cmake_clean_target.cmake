file(REMOVE_RECURSE
  "libctdf_machine.a"
)
