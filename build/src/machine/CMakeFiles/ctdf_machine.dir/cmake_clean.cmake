file(REMOVE_RECURSE
  "CMakeFiles/ctdf_machine.dir/machine.cpp.o"
  "CMakeFiles/ctdf_machine.dir/machine.cpp.o.d"
  "CMakeFiles/ctdf_machine.dir/report.cpp.o"
  "CMakeFiles/ctdf_machine.dir/report.cpp.o.d"
  "libctdf_machine.a"
  "libctdf_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctdf_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
