file(REMOVE_RECURSE
  "libctdf_cfg.a"
)
