
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/build.cpp" "src/cfg/CMakeFiles/ctdf_cfg.dir/build.cpp.o" "gcc" "src/cfg/CMakeFiles/ctdf_cfg.dir/build.cpp.o.d"
  "/root/repo/src/cfg/control_dep.cpp" "src/cfg/CMakeFiles/ctdf_cfg.dir/control_dep.cpp.o" "gcc" "src/cfg/CMakeFiles/ctdf_cfg.dir/control_dep.cpp.o.d"
  "/root/repo/src/cfg/dataflow.cpp" "src/cfg/CMakeFiles/ctdf_cfg.dir/dataflow.cpp.o" "gcc" "src/cfg/CMakeFiles/ctdf_cfg.dir/dataflow.cpp.o.d"
  "/root/repo/src/cfg/dominance.cpp" "src/cfg/CMakeFiles/ctdf_cfg.dir/dominance.cpp.o" "gcc" "src/cfg/CMakeFiles/ctdf_cfg.dir/dominance.cpp.o.d"
  "/root/repo/src/cfg/graph.cpp" "src/cfg/CMakeFiles/ctdf_cfg.dir/graph.cpp.o" "gcc" "src/cfg/CMakeFiles/ctdf_cfg.dir/graph.cpp.o.d"
  "/root/repo/src/cfg/intervals.cpp" "src/cfg/CMakeFiles/ctdf_cfg.dir/intervals.cpp.o" "gcc" "src/cfg/CMakeFiles/ctdf_cfg.dir/intervals.cpp.o.d"
  "/root/repo/src/cfg/ssa.cpp" "src/cfg/CMakeFiles/ctdf_cfg.dir/ssa.cpp.o" "gcc" "src/cfg/CMakeFiles/ctdf_cfg.dir/ssa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/ctdf_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ctdf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
