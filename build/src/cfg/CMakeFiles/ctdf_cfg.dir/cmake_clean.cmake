file(REMOVE_RECURSE
  "CMakeFiles/ctdf_cfg.dir/build.cpp.o"
  "CMakeFiles/ctdf_cfg.dir/build.cpp.o.d"
  "CMakeFiles/ctdf_cfg.dir/control_dep.cpp.o"
  "CMakeFiles/ctdf_cfg.dir/control_dep.cpp.o.d"
  "CMakeFiles/ctdf_cfg.dir/dataflow.cpp.o"
  "CMakeFiles/ctdf_cfg.dir/dataflow.cpp.o.d"
  "CMakeFiles/ctdf_cfg.dir/dominance.cpp.o"
  "CMakeFiles/ctdf_cfg.dir/dominance.cpp.o.d"
  "CMakeFiles/ctdf_cfg.dir/graph.cpp.o"
  "CMakeFiles/ctdf_cfg.dir/graph.cpp.o.d"
  "CMakeFiles/ctdf_cfg.dir/intervals.cpp.o"
  "CMakeFiles/ctdf_cfg.dir/intervals.cpp.o.d"
  "CMakeFiles/ctdf_cfg.dir/ssa.cpp.o"
  "CMakeFiles/ctdf_cfg.dir/ssa.cpp.o.d"
  "libctdf_cfg.a"
  "libctdf_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctdf_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
