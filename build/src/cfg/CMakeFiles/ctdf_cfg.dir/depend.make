# Empty dependencies file for ctdf_cfg.
# This may be replaced when dependencies are built.
