
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/translate/cover.cpp" "src/translate/CMakeFiles/ctdf_translate.dir/cover.cpp.o" "gcc" "src/translate/CMakeFiles/ctdf_translate.dir/cover.cpp.o.d"
  "/root/repo/src/translate/options.cpp" "src/translate/CMakeFiles/ctdf_translate.dir/options.cpp.o" "gcc" "src/translate/CMakeFiles/ctdf_translate.dir/options.cpp.o.d"
  "/root/repo/src/translate/subscript.cpp" "src/translate/CMakeFiles/ctdf_translate.dir/subscript.cpp.o" "gcc" "src/translate/CMakeFiles/ctdf_translate.dir/subscript.cpp.o.d"
  "/root/repo/src/translate/switch_place.cpp" "src/translate/CMakeFiles/ctdf_translate.dir/switch_place.cpp.o" "gcc" "src/translate/CMakeFiles/ctdf_translate.dir/switch_place.cpp.o.d"
  "/root/repo/src/translate/translator.cpp" "src/translate/CMakeFiles/ctdf_translate.dir/translator.cpp.o" "gcc" "src/translate/CMakeFiles/ctdf_translate.dir/translator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cfg/CMakeFiles/ctdf_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/ctdf_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/ctdf_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ctdf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
