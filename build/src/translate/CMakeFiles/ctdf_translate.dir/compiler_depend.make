# Empty compiler generated dependencies file for ctdf_translate.
# This may be replaced when dependencies are built.
