file(REMOVE_RECURSE
  "CMakeFiles/ctdf_translate.dir/cover.cpp.o"
  "CMakeFiles/ctdf_translate.dir/cover.cpp.o.d"
  "CMakeFiles/ctdf_translate.dir/options.cpp.o"
  "CMakeFiles/ctdf_translate.dir/options.cpp.o.d"
  "CMakeFiles/ctdf_translate.dir/subscript.cpp.o"
  "CMakeFiles/ctdf_translate.dir/subscript.cpp.o.d"
  "CMakeFiles/ctdf_translate.dir/switch_place.cpp.o"
  "CMakeFiles/ctdf_translate.dir/switch_place.cpp.o.d"
  "CMakeFiles/ctdf_translate.dir/translator.cpp.o"
  "CMakeFiles/ctdf_translate.dir/translator.cpp.o.d"
  "libctdf_translate.a"
  "libctdf_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctdf_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
