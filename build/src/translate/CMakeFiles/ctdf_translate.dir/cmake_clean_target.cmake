file(REMOVE_RECURSE
  "libctdf_translate.a"
)
