file(REMOVE_RECURSE
  "libctdf_core.a"
)
