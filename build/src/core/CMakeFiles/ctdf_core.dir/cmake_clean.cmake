file(REMOVE_RECURSE
  "CMakeFiles/ctdf_core.dir/compiler.cpp.o"
  "CMakeFiles/ctdf_core.dir/compiler.cpp.o.d"
  "libctdf_core.a"
  "libctdf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctdf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
