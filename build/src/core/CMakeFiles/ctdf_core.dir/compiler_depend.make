# Empty compiler generated dependencies file for ctdf_core.
# This may be replaced when dependencies are built.
