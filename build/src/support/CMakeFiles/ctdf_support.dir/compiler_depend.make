# Empty compiler generated dependencies file for ctdf_support.
# This may be replaced when dependencies are built.
