file(REMOVE_RECURSE
  "CMakeFiles/ctdf_support.dir/diagnostics.cpp.o"
  "CMakeFiles/ctdf_support.dir/diagnostics.cpp.o.d"
  "libctdf_support.a"
  "libctdf_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctdf_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
