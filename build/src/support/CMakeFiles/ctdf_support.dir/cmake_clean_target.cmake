file(REMOVE_RECURSE
  "libctdf_support.a"
)
