# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_support "/root/repo/build/tests/test_support")
set_tests_properties(test_support PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;16;ctdf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_lang "/root/repo/build/tests/test_lang")
set_tests_properties(test_lang PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;17;ctdf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_cfg "/root/repo/build/tests/test_cfg")
set_tests_properties(test_cfg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;21;ctdf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_dfg "/root/repo/build/tests/test_dfg")
set_tests_properties(test_dfg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;24;ctdf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_machine "/root/repo/build/tests/test_machine")
set_tests_properties(test_machine PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;26;ctdf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_translate "/root/repo/build/tests/test_translate")
set_tests_properties(test_translate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;28;ctdf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_schemas "/root/repo/build/tests/test_schemas")
set_tests_properties(test_schemas PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;31;ctdf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_props "/root/repo/build/tests/test_props")
set_tests_properties(test_props PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;32;ctdf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_transforms "/root/repo/build/tests/test_transforms")
set_tests_properties(test_transforms PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;35;ctdf_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;13;add_test;/root/repo/tests/CMakeLists.txt;36;ctdf_test;/root/repo/tests/CMakeLists.txt;0;")
