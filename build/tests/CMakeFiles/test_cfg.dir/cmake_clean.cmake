file(REMOVE_RECURSE
  "CMakeFiles/test_cfg.dir/cfg_build_test.cpp.o"
  "CMakeFiles/test_cfg.dir/cfg_build_test.cpp.o.d"
  "CMakeFiles/test_cfg.dir/cfg_control_dep_test.cpp.o"
  "CMakeFiles/test_cfg.dir/cfg_control_dep_test.cpp.o.d"
  "CMakeFiles/test_cfg.dir/cfg_dataflow_test.cpp.o"
  "CMakeFiles/test_cfg.dir/cfg_dataflow_test.cpp.o.d"
  "CMakeFiles/test_cfg.dir/cfg_dominance_test.cpp.o"
  "CMakeFiles/test_cfg.dir/cfg_dominance_test.cpp.o.d"
  "CMakeFiles/test_cfg.dir/cfg_intervals_test.cpp.o"
  "CMakeFiles/test_cfg.dir/cfg_intervals_test.cpp.o.d"
  "CMakeFiles/test_cfg.dir/cfg_ssa_test.cpp.o"
  "CMakeFiles/test_cfg.dir/cfg_ssa_test.cpp.o.d"
  "test_cfg"
  "test_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
