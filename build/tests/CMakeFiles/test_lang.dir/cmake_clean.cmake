file(REMOVE_RECURSE
  "CMakeFiles/test_lang.dir/lang_ast_test.cpp.o"
  "CMakeFiles/test_lang.dir/lang_ast_test.cpp.o.d"
  "CMakeFiles/test_lang.dir/lang_builder_test.cpp.o"
  "CMakeFiles/test_lang.dir/lang_builder_test.cpp.o.d"
  "CMakeFiles/test_lang.dir/lang_generator_test.cpp.o"
  "CMakeFiles/test_lang.dir/lang_generator_test.cpp.o.d"
  "CMakeFiles/test_lang.dir/lang_interp_test.cpp.o"
  "CMakeFiles/test_lang.dir/lang_interp_test.cpp.o.d"
  "CMakeFiles/test_lang.dir/lang_lexer_test.cpp.o"
  "CMakeFiles/test_lang.dir/lang_lexer_test.cpp.o.d"
  "CMakeFiles/test_lang.dir/lang_parser_test.cpp.o"
  "CMakeFiles/test_lang.dir/lang_parser_test.cpp.o.d"
  "CMakeFiles/test_lang.dir/lang_subroutines_test.cpp.o"
  "CMakeFiles/test_lang.dir/lang_subroutines_test.cpp.o.d"
  "CMakeFiles/test_lang.dir/lang_symbols_test.cpp.o"
  "CMakeFiles/test_lang.dir/lang_symbols_test.cpp.o.d"
  "test_lang"
  "test_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
