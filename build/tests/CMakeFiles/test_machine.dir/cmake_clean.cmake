file(REMOVE_RECURSE
  "CMakeFiles/test_machine.dir/machine_bounding_test.cpp.o"
  "CMakeFiles/test_machine.dir/machine_bounding_test.cpp.o.d"
  "CMakeFiles/test_machine.dir/machine_loop_test.cpp.o"
  "CMakeFiles/test_machine.dir/machine_loop_test.cpp.o.d"
  "CMakeFiles/test_machine.dir/machine_multipe_test.cpp.o"
  "CMakeFiles/test_machine.dir/machine_multipe_test.cpp.o.d"
  "CMakeFiles/test_machine.dir/machine_test.cpp.o"
  "CMakeFiles/test_machine.dir/machine_test.cpp.o.d"
  "test_machine"
  "test_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
