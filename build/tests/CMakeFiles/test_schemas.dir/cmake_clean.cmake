file(REMOVE_RECURSE
  "CMakeFiles/test_schemas.dir/schema_equivalence_test.cpp.o"
  "CMakeFiles/test_schemas.dir/schema_equivalence_test.cpp.o.d"
  "test_schemas"
  "test_schemas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schemas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
