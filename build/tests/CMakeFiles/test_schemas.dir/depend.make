# Empty dependencies file for test_schemas.
# This may be replaced when dependencies are built.
