file(REMOVE_RECURSE
  "CMakeFiles/ctdf_test_support.dir/support/equivalence.cpp.o"
  "CMakeFiles/ctdf_test_support.dir/support/equivalence.cpp.o.d"
  "CMakeFiles/ctdf_test_support.dir/support/oracles.cpp.o"
  "CMakeFiles/ctdf_test_support.dir/support/oracles.cpp.o.d"
  "libctdf_test_support.a"
  "libctdf_test_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctdf_test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
