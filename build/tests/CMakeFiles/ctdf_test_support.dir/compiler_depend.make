# Empty compiler generated dependencies file for ctdf_test_support.
# This may be replaced when dependencies are built.
