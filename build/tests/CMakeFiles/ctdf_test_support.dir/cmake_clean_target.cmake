file(REMOVE_RECURSE
  "libctdf_test_support.a"
)
