file(REMOVE_RECURSE
  "CMakeFiles/test_dfg.dir/dfg_asm_test.cpp.o"
  "CMakeFiles/test_dfg.dir/dfg_asm_test.cpp.o.d"
  "CMakeFiles/test_dfg.dir/dfg_graph_test.cpp.o"
  "CMakeFiles/test_dfg.dir/dfg_graph_test.cpp.o.d"
  "CMakeFiles/test_dfg.dir/dfg_passes_test.cpp.o"
  "CMakeFiles/test_dfg.dir/dfg_passes_test.cpp.o.d"
  "test_dfg"
  "test_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
