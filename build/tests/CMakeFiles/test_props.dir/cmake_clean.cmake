file(REMOVE_RECURSE
  "CMakeFiles/test_props.dir/property_array_transforms_test.cpp.o"
  "CMakeFiles/test_props.dir/property_array_transforms_test.cpp.o.d"
  "CMakeFiles/test_props.dir/property_confluence_test.cpp.o"
  "CMakeFiles/test_props.dir/property_confluence_test.cpp.o.d"
  "CMakeFiles/test_props.dir/property_random_programs_test.cpp.o"
  "CMakeFiles/test_props.dir/property_random_programs_test.cpp.o.d"
  "CMakeFiles/test_props.dir/property_theorem1_test.cpp.o"
  "CMakeFiles/test_props.dir/property_theorem1_test.cpp.o.d"
  "test_props"
  "test_props.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
