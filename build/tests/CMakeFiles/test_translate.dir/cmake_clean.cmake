file(REMOVE_RECURSE
  "CMakeFiles/test_translate.dir/translate_cover_test.cpp.o"
  "CMakeFiles/test_translate.dir/translate_cover_test.cpp.o.d"
  "CMakeFiles/test_translate.dir/translate_snapshot_test.cpp.o"
  "CMakeFiles/test_translate.dir/translate_snapshot_test.cpp.o.d"
  "CMakeFiles/test_translate.dir/translate_structure_test.cpp.o"
  "CMakeFiles/test_translate.dir/translate_structure_test.cpp.o.d"
  "CMakeFiles/test_translate.dir/translate_subscript_test.cpp.o"
  "CMakeFiles/test_translate.dir/translate_subscript_test.cpp.o.d"
  "CMakeFiles/test_translate.dir/translate_switch_test.cpp.o"
  "CMakeFiles/test_translate.dir/translate_switch_test.cpp.o.d"
  "test_translate"
  "test_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
