# Empty compiler generated dependencies file for ctdf.
# This may be replaced when dependencies are built.
