file(REMOVE_RECURSE
  "CMakeFiles/ctdf.dir/ctdf.cpp.o"
  "CMakeFiles/ctdf.dir/ctdf.cpp.o.d"
  "ctdf"
  "ctdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
