file(REMOVE_RECURSE
  "CMakeFiles/fortran_alias.dir/fortran_alias.cpp.o"
  "CMakeFiles/fortran_alias.dir/fortran_alias.cpp.o.d"
  "fortran_alias"
  "fortran_alias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fortran_alias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
