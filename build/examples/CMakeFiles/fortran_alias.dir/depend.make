# Empty dependencies file for fortran_alias.
# This may be replaced when dependencies are built.
