file(REMOVE_RECURSE
  "CMakeFiles/unstructured_flow.dir/unstructured_flow.cpp.o"
  "CMakeFiles/unstructured_flow.dir/unstructured_flow.cpp.o.d"
  "unstructured_flow"
  "unstructured_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unstructured_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
