# Empty compiler generated dependencies file for unstructured_flow.
# This may be replaced when dependencies are built.
