file(REMOVE_RECURSE
  "CMakeFiles/array_stencil.dir/array_stencil.cpp.o"
  "CMakeFiles/array_stencil.dir/array_stencil.cpp.o.d"
  "array_stencil"
  "array_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/array_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
