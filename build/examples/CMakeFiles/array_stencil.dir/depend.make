# Empty dependencies file for array_stencil.
# This may be replaced when dependencies are built.
