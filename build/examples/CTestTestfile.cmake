# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_unstructured_flow "/root/repo/build/examples/unstructured_flow")
set_tests_properties(example_unstructured_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fortran_alias "/root/repo/build/examples/fortran_alias")
set_tests_properties(example_fortran_alias PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_array_stencil "/root/repo/build/examples/array_stencil")
set_tests_properties(example_array_stencil PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pipeline_explorer "/root/repo/build/examples/pipeline_explorer")
set_tests_properties(example_pipeline_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kernels "/root/repo/build/examples/kernels")
set_tests_properties(example_kernels PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
