# Empty compiler generated dependencies file for fig08_schema2_parallel.
# This may be replaced when dependencies are built.
