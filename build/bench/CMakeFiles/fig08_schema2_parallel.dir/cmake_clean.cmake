file(REMOVE_RECURSE
  "CMakeFiles/fig08_schema2_parallel.dir/fig08_schema2_parallel.cpp.o"
  "CMakeFiles/fig08_schema2_parallel.dir/fig08_schema2_parallel.cpp.o.d"
  "fig08_schema2_parallel"
  "fig08_schema2_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_schema2_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
