file(REMOVE_RECURSE
  "CMakeFiles/fig09_switch_elimination.dir/fig09_switch_elimination.cpp.o"
  "CMakeFiles/fig09_switch_elimination.dir/fig09_switch_elimination.cpp.o.d"
  "fig09_switch_elimination"
  "fig09_switch_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_switch_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
