# Empty compiler generated dependencies file for fig09_switch_elimination.
# This may be replaced when dependencies are built.
