# Empty dependencies file for ablate_processors.
# This may be replaced when dependencies are built.
