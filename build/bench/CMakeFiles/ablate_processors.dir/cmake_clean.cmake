file(REMOVE_RECURSE
  "CMakeFiles/ablate_processors.dir/ablate_processors.cpp.o"
  "CMakeFiles/ablate_processors.dir/ablate_processors.cpp.o.d"
  "ablate_processors"
  "ablate_processors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_processors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
