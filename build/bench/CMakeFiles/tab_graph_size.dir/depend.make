# Empty dependencies file for tab_graph_size.
# This may be replaced when dependencies are built.
