file(REMOVE_RECURSE
  "CMakeFiles/tab_graph_size.dir/tab_graph_size.cpp.o"
  "CMakeFiles/tab_graph_size.dir/tab_graph_size.cpp.o.d"
  "tab_graph_size"
  "tab_graph_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_graph_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
