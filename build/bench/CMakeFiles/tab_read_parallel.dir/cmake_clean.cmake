file(REMOVE_RECURSE
  "CMakeFiles/tab_read_parallel.dir/tab_read_parallel.cpp.o"
  "CMakeFiles/tab_read_parallel.dir/tab_read_parallel.cpp.o.d"
  "tab_read_parallel"
  "tab_read_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_read_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
