# Empty dependencies file for tab_read_parallel.
# This may be replaced when dependencies are built.
