# Empty dependencies file for fig14_array_parallel.
# This may be replaced when dependencies are built.
