file(REMOVE_RECURSE
  "CMakeFiles/fig14_array_parallel.dir/fig14_array_parallel.cpp.o"
  "CMakeFiles/fig14_array_parallel.dir/fig14_array_parallel.cpp.o.d"
  "fig14_array_parallel"
  "fig14_array_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_array_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
