# Empty compiler generated dependencies file for fig11_source_vectors.
# This may be replaced when dependencies are built.
