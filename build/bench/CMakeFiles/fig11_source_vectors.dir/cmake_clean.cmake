file(REMOVE_RECURSE
  "CMakeFiles/fig11_source_vectors.dir/fig11_source_vectors.cpp.o"
  "CMakeFiles/fig11_source_vectors.dir/fig11_source_vectors.cpp.o.d"
  "fig11_source_vectors"
  "fig11_source_vectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_source_vectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
