file(REMOVE_RECURSE
  "CMakeFiles/ablate_optim_pipeline.dir/ablate_optim_pipeline.cpp.o"
  "CMakeFiles/ablate_optim_pipeline.dir/ablate_optim_pipeline.cpp.o.d"
  "ablate_optim_pipeline"
  "ablate_optim_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_optim_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
