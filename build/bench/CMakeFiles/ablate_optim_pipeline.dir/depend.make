# Empty dependencies file for ablate_optim_pipeline.
# This may be replaced when dependencies are built.
