# Empty dependencies file for fig10_switch_placement.
# This may be replaced when dependencies are built.
