file(REMOVE_RECURSE
  "CMakeFiles/ablate_loop_control.dir/ablate_loop_control.cpp.o"
  "CMakeFiles/ablate_loop_control.dir/ablate_loop_control.cpp.o.d"
  "ablate_loop_control"
  "ablate_loop_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_loop_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
