# Empty dependencies file for ablate_loop_control.
# This may be replaced when dependencies are built.
