# Empty compiler generated dependencies file for fig12_alias_covers.
# This may be replaced when dependencies are built.
