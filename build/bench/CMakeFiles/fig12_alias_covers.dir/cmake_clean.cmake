file(REMOVE_RECURSE
  "CMakeFiles/fig12_alias_covers.dir/fig12_alias_covers.cpp.o"
  "CMakeFiles/fig12_alias_covers.dir/fig12_alias_covers.cpp.o.d"
  "fig12_alias_covers"
  "fig12_alias_covers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_alias_covers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
