# Empty dependencies file for ablate_loop_bound.
# This may be replaced when dependencies are built.
