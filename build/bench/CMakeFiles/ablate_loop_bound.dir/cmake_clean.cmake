file(REMOVE_RECURSE
  "CMakeFiles/ablate_loop_bound.dir/ablate_loop_bound.cpp.o"
  "CMakeFiles/ablate_loop_bound.dir/ablate_loop_bound.cpp.o.d"
  "ablate_loop_bound"
  "ablate_loop_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_loop_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
