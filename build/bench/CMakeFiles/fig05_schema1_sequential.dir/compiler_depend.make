# Empty compiler generated dependencies file for fig05_schema1_sequential.
# This may be replaced when dependencies are built.
