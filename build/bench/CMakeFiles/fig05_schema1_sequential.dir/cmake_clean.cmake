file(REMOVE_RECURSE
  "CMakeFiles/fig05_schema1_sequential.dir/fig05_schema1_sequential.cpp.o"
  "CMakeFiles/fig05_schema1_sequential.dir/fig05_schema1_sequential.cpp.o.d"
  "fig05_schema1_sequential"
  "fig05_schema1_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_schema1_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
