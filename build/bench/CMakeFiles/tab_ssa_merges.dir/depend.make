# Empty dependencies file for tab_ssa_merges.
# This may be replaced when dependencies are built.
