file(REMOVE_RECURSE
  "CMakeFiles/tab_ssa_merges.dir/tab_ssa_merges.cpp.o"
  "CMakeFiles/tab_ssa_merges.dir/tab_ssa_merges.cpp.o.d"
  "tab_ssa_merges"
  "tab_ssa_merges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_ssa_merges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
