# Empty compiler generated dependencies file for tab_mem_elim.
# This may be replaced when dependencies are built.
