file(REMOVE_RECURSE
  "CMakeFiles/tab_mem_elim.dir/tab_mem_elim.cpp.o"
  "CMakeFiles/tab_mem_elim.dir/tab_mem_elim.cpp.o.d"
  "tab_mem_elim"
  "tab_mem_elim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_mem_elim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
