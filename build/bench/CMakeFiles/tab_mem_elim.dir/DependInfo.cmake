
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab_mem_elim.cpp" "bench/CMakeFiles/tab_mem_elim.dir/tab_mem_elim.cpp.o" "gcc" "bench/CMakeFiles/tab_mem_elim.dir/tab_mem_elim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ctdf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/translate/CMakeFiles/ctdf_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ctdf_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/dfg/CMakeFiles/ctdf_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/ctdf_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/ctdf_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ctdf_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
