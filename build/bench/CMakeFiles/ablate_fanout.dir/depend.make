# Empty dependencies file for ablate_fanout.
# This may be replaced when dependencies are built.
