file(REMOVE_RECURSE
  "CMakeFiles/ablate_fanout.dir/ablate_fanout.cpp.o"
  "CMakeFiles/ablate_fanout.dir/ablate_fanout.cpp.o.d"
  "ablate_fanout"
  "ablate_fanout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_fanout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
