# Empty compiler generated dependencies file for ablate_machine_width.
# This may be replaced when dependencies are built.
