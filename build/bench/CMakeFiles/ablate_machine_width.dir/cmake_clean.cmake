file(REMOVE_RECURSE
  "CMakeFiles/ablate_machine_width.dir/ablate_machine_width.cpp.o"
  "CMakeFiles/ablate_machine_width.dir/ablate_machine_width.cpp.o.d"
  "ablate_machine_width"
  "ablate_machine_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_machine_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
